// Package obs is the live observability layer: a hierarchical span
// tracer (preprocess → build → refine → enumerate → cluster), a progress
// reporter invoked at a fixed interval during enumeration, and an HTTP
// telemetry endpoint exposing counters, progress, and the span tree as
// JSON and Prometheus text alongside net/http/pprof.
//
// Everything here is nil-safe: a nil *Tracer, *Span, *Reporter, or
// *Registry turns every method into a no-op, so instrumentation can be
// threaded through hot paths without branching at each call site.
package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one span attribute (a key/value string pair).
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// DefaultMaxChildren bounds the spans recorded under one parent. Spans
// beyond the cap are counted (SpanNode.Dropped) but not retained, so a
// million-cluster enumeration cannot exhaust memory through its trace.
const DefaultMaxChildren = 512

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// MaxChildren caps recorded children per span (0 = DefaultMaxChildren).
	MaxChildren int
	// JSONL, when non-nil, receives one JSON line per span start and end
	// — an offline-analyzable event log. Writes happen under the tracer
	// lock; pass a buffered writer for high-frequency traces.
	JSONL io.Writer
}

// Tracer records a tree of timed spans. Safe for concurrent use; span
// creation from multiple workers interleaves under one lock, so it is
// meant for phase/cluster granularity, not per-embedding events.
//
// Every span carries a W3C trace-context identity: root spans opened
// with Start belong to the tracer's own trace (one random 128-bit trace
// ID minted at NewTracer), roots opened with StartRemote join the trace
// of a propagated TraceContext, and span IDs are allocated
// deterministically from (trace ID, tracer salt, sequence number).
type Tracer struct {
	mu    sync.Mutex
	opts  TracerOptions
	tc    TraceContext // default trace identity for Start roots
	roots []*Span
	drops int
	seq   int64
	salt  int64 // tracer identity mixed into span IDs (see below)
	epoch time.Time
}

// NewTracer returns a Tracer recording from now.
//
// The tracer's random identity (its own trace ID) doubles as a span-ID
// salt: span IDs derive from (trace ID, salt ^ seq), so two tracers in
// different processes serving the SAME distributed trace — a router and
// its shards — never mint colliding span IDs, which would corrupt
// stitched trees.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.MaxChildren <= 0 {
		opts.MaxChildren = DefaultMaxChildren
	}
	t := &Tracer{opts: opts, tc: NewTraceContext(), epoch: time.Now()}
	t.salt = int64(binary.BigEndian.Uint64(t.tc.TraceID[:8]))
	return t
}

// TraceID returns the tracer's own trace identity — the trace that
// plain Start roots belong to.
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.tc.TraceID
}

// Span is one timed node of the trace tree. Create with Tracer.Start,
// Tracer.StartRemote, or Span.Child; call End exactly once (extra Ends
// are ignored).
type Span struct {
	tracer   *Tracer
	id       int64
	name     string
	tc       TraceContext // this span's own (trace ID, span ID) identity
	parentSp SpanID       // parent span ID (zero on trace roots)
	attrs    []Attr
	start    time.Time
	end      time.Time
	ended    bool
	detached bool // beyond the parent's child cap: timed but not recorded
	children []*Span
	dropped  int
}

// Start opens a top-level span in the tracer's own trace.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.startRoot(t.tc.TraceID, t.tc.SpanID, name, attrs)
}

// StartRemote opens a top-level span that continues a propagated trace:
// the span joins tc's trace and records tc.SpanID as its parent, so a
// caller on another machine (or the HTTP client that sent the
// traceparent header) owns the span this subtree stitches under.
// An invalid tc falls back to Start.
func (t *Tracer) StartRemote(tc TraceContext, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if !tc.TraceID.IsZero() {
		return t.startRoot(tc.TraceID, tc.SpanID, name, attrs)
	}
	return t.Start(name, attrs...)
}

func (t *Tracer) startRoot(tid TraceID, parent SpanID, name string, attrs []Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.roots) >= t.opts.MaxChildren {
		t.drops++
		t.seq++
		return &Span{
			tracer: t, detached: true, start: time.Now(),
			tc:       TraceContext{TraceID: tid, SpanID: deriveSpanID(tid, t.salt^t.seq), Sampled: true},
			parentSp: parent,
		}
	}
	s := t.newSpanLocked(name, tid, parent, 0, attrs)
	t.roots = append(t.roots, s)
	return s
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.detached || len(s.children) >= t.opts.MaxChildren {
		s.dropped++
		t.seq++
		return &Span{
			tracer: t, detached: true, start: time.Now(),
			tc:       TraceContext{TraceID: s.tc.TraceID, SpanID: deriveSpanID(s.tc.TraceID, t.salt^t.seq), Sampled: true},
			parentSp: s.tc.SpanID,
		}
	}
	c := t.newSpanLocked(name, s.tc.TraceID, s.tc.SpanID, s.id, attrs)
	s.children = append(s.children, c)
	return c
}

// Context returns the span's trace position for propagation: children
// opened downstream — in-process or across a wire — should parent under
// this span. Safe on nil (returns the zero, invalid context).
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return s.tc
}

func (t *Tracer) newSpanLocked(name string, tid TraceID, parentSp SpanID, parent int64, attrs []Attr) *Span {
	t.seq++
	s := &Span{
		tracer: t, id: t.seq, name: name, attrs: attrs, start: time.Now(),
		tc:       TraceContext{TraceID: tid, SpanID: deriveSpanID(tid, t.salt^t.seq), Sampled: true},
		parentSp: parentSp,
	}
	ev := map[string]any{
		"ev":     "start",
		"id":     s.id,
		"parent": parent,
		"name":   name,
		"t_us":   s.start.Sub(t.epoch).Microseconds(),
		"attrs":  attrMap(attrs),
	}
	if !tid.IsZero() {
		ev["trace"] = tid.String()
		ev["span"] = s.tc.SpanID.String()
		if !parentSp.IsZero() {
			ev["span_parent"] = parentSp.String()
		}
	}
	t.emitLocked(ev)
	return s
}

// End closes the span. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	s.endLocked(t, time.Now())
}

func (s *Span) endLocked(t *Tracer, now time.Time) {
	if s.ended {
		return
	}
	s.ended = true
	s.end = now
	if s.detached {
		return
	}
	t.emitLocked(map[string]any{
		"ev":     "end",
		"id":     s.id,
		"t_us":   s.end.Sub(t.epoch).Microseconds(),
		"dur_us": s.end.Sub(s.start).Microseconds(),
	})
}

// EndOpen force-closes every still-open span, children before parents,
// emitting their end events to the JSONL log. Called on
// SIGINT/SIGTERM so an interrupted run's span log carries a terminated
// record for every span instead of dropping the open tail.
func (t *Tracer) EndOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.children {
			walk(c)
		}
		s.endLocked(t, now)
	}
	for _, r := range t.roots {
		walk(r)
	}
}

// Annotate appends attributes to an already-open span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.detached {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tracer.mu.Unlock()
}

func (t *Tracer) emitLocked(ev map[string]any) {
	if t.opts.JSONL == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.opts.JSONL.Write(append(b, '\n')) // best effort
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// SpanNode is an immutable snapshot of one span, JSON-marshalable for
// the telemetry endpoint, the flight recorder, and the trace exporters.
type SpanNode struct {
	Name string `json:"name"`
	// TraceID/SpanID/ParentSpanID are the span's W3C trace-context
	// identity as lowercase hex. ParentSpanID is empty on trace roots;
	// on a remote-parented root (StartRemote) it names a span owned by
	// another tracer, which is how Stitch reconnects distributed trees.
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	StartUS      int64             `json:"start_us"`
	DurUS        int64             `json:"dur_us"`
	Running      bool              `json:"running,omitempty"`
	// Dropped counts children beyond the MaxChildren cap.
	Dropped  int         `json:"dropped_children,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree snapshots the current span forest. Open spans report their
// duration so far and Running=true.
func (t *Tracer) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	out := make([]*SpanNode, len(t.roots))
	for i, s := range t.roots {
		out[i] = s.snapshotLocked(t, now)
	}
	return out
}

func (s *Span) snapshotLocked(t *Tracer, now time.Time) *SpanNode {
	n := &SpanNode{
		Name:    s.name,
		Attrs:   attrMap(s.attrs),
		StartUS: s.start.Sub(t.epoch).Microseconds(),
		Dropped: s.dropped,
	}
	if !s.tc.TraceID.IsZero() {
		n.TraceID = s.tc.TraceID.String()
		n.SpanID = s.tc.SpanID.String()
		if !s.parentSp.IsZero() {
			n.ParentSpanID = s.parentSp.String()
		}
	}
	if s.ended {
		n.DurUS = s.end.Sub(s.start).Microseconds()
	} else {
		n.DurUS = now.Sub(s.start).Microseconds()
		n.Running = true
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.snapshotLocked(t, now))
	}
	return n
}

// Collect snapshots every root span belonging to trace tid and stitches
// remote-parented roots under their parents (see Stitch). The spans
// remain in the tracer; use Take to also remove them.
func (t *Tracer) Collect(tid TraceID) []*SpanNode {
	return t.gather(tid, false)
}

// Take is Collect plus removal: the returned trees are detached from
// the tracer's live forest, so a long-running server that snapshots
// each completed query into its flight recorder does not accumulate
// spans without bound.
func (t *Tracer) Take(tid TraceID) []*SpanNode {
	return t.gather(tid, true)
}

func (t *Tracer) gather(tid TraceID, remove bool) []*SpanNode {
	if t == nil || tid.IsZero() {
		return nil
	}
	t.mu.Lock()
	now := time.Now()
	var nodes []*SpanNode
	var keep []*Span
	for _, r := range t.roots {
		if r.tc.TraceID == tid {
			nodes = append(nodes, r.snapshotLocked(t, now))
			if remove {
				continue
			}
		}
		keep = append(keep, r)
	}
	if remove {
		t.roots = keep
	}
	t.mu.Unlock()
	return Stitch(nodes)
}

// Stitch reconnects a forest of span trees by trace-context identity:
// any top-level tree whose root names a ParentSpanID that exists
// elsewhere in the forest is moved under that parent. This is how
// spans that crossed a process or machine boundary — remote roots
// opened from a propagated traceparent — rejoin the request's tree.
// Trees whose parent is not present (the parent lives in another
// process whose spans were not gathered here) stay top-level.
func Stitch(nodes []*SpanNode) []*SpanNode {
	if len(nodes) <= 1 {
		return nodes
	}
	byID := make(map[string]*SpanNode)
	var index func(n *SpanNode)
	index = func(n *SpanNode) {
		if n.SpanID != "" {
			byID[n.SpanID] = n
		}
		for _, c := range n.Children {
			index(c)
		}
	}
	for _, n := range nodes {
		index(n)
	}
	var out []*SpanNode
	for _, n := range nodes {
		if n.ParentSpanID != "" {
			if parent, ok := byID[n.ParentSpanID]; ok && parent != n {
				parent.Children = append(parent.Children, n)
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

// PhaseDurations aggregates span durations by name across the whole
// forest — the flat view stats.PhaseTrace used to provide, derived from
// the richer hierarchy.
//
// Semantics (locked in by TestPhaseDurationsSemantics):
//
//   - every recorded span contributes its full duration to the entry of
//     its name; repeated same-name spans (refine rounds, per-cluster
//     children) sum deterministically, including nested same-name spans
//     — the map is a flat by-name total, not a tree rollup;
//   - still-open spans contribute their elapsed-so-far, measured at one
//     instant captured once for the entire aggregation, so concurrent
//     open spans are mutually consistent;
//   - durations keep full time.Time resolution (no microsecond
//     truncation — earlier versions derived this map from Tree(), whose
//     µs-granular snapshot made repeated aggregations of the same
//     closed trace disagree below 1µs);
//   - detached spans (beyond the MaxChildren cap) are excluded, exactly
//     as they are from Tree().
func (t *Tracer) PhaseDurations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	out := make(map[string]time.Duration)
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.ended {
			out[s.name] += s.end.Sub(s.start)
		} else {
			out[s.name] += now.Sub(s.start)
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return out
}

// String renders the tree with indentation, children in start order.
func (t *Tracer) String() string {
	if t == nil {
		return "<nil tracer>"
	}
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%-*s %12v", strings.Repeat("  ", depth), 24-2*depth, n.Name,
			time.Duration(n.DurUS)*time.Microsecond)
		if n.Running {
			b.WriteString(" (running)")
		}
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
			}
		}
		if n.Dropped > 0 {
			fmt.Fprintf(&b, " +%d dropped", n.Dropped)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Tree() {
		walk(r, 0)
	}
	return b.String()
}
