// Package obs is the live observability layer: a hierarchical span
// tracer (preprocess → build → refine → enumerate → cluster), a progress
// reporter invoked at a fixed interval during enumeration, and an HTTP
// telemetry endpoint exposing counters, progress, and the span tree as
// JSON and Prometheus text alongside net/http/pprof.
//
// Everything here is nil-safe: a nil *Tracer, *Span, *Reporter, or
// *Registry turns every method into a no-op, so instrumentation can be
// threaded through hot paths without branching at each call site.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one span attribute (a key/value string pair).
type Attr struct {
	Key   string
	Value string
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// DefaultMaxChildren bounds the spans recorded under one parent. Spans
// beyond the cap are counted (SpanNode.Dropped) but not retained, so a
// million-cluster enumeration cannot exhaust memory through its trace.
const DefaultMaxChildren = 512

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// MaxChildren caps recorded children per span (0 = DefaultMaxChildren).
	MaxChildren int
	// JSONL, when non-nil, receives one JSON line per span start and end
	// — an offline-analyzable event log. Writes happen under the tracer
	// lock; pass a buffered writer for high-frequency traces.
	JSONL io.Writer
}

// Tracer records a tree of timed spans. Safe for concurrent use; span
// creation from multiple workers interleaves under one lock, so it is
// meant for phase/cluster granularity, not per-embedding events.
type Tracer struct {
	mu    sync.Mutex
	opts  TracerOptions
	roots []*Span
	drops int
	seq   int64
	epoch time.Time
}

// NewTracer returns a Tracer recording from now.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.MaxChildren <= 0 {
		opts.MaxChildren = DefaultMaxChildren
	}
	return &Tracer{opts: opts, epoch: time.Now()}
}

// Span is one timed node of the trace tree. Create with Tracer.Start or
// Span.Child; call End exactly once (extra Ends are ignored).
type Span struct {
	tracer   *Tracer
	id       int64
	name     string
	attrs    []Attr
	start    time.Time
	end      time.Time
	ended    bool
	detached bool // beyond the parent's child cap: timed but not recorded
	children []*Span
	dropped  int
}

// Start opens a top-level span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.roots) >= t.opts.MaxChildren {
		t.drops++
		return &Span{tracer: t, detached: true, start: time.Now()}
	}
	s := t.newSpanLocked(name, 0, attrs)
	t.roots = append(t.roots, s)
	return s
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.detached || len(s.children) >= t.opts.MaxChildren {
		s.dropped++
		return &Span{tracer: t, detached: true, start: time.Now()}
	}
	c := t.newSpanLocked(name, s.id, attrs)
	s.children = append(s.children, c)
	return c
}

func (t *Tracer) newSpanLocked(name string, parent int64, attrs []Attr) *Span {
	t.seq++
	s := &Span{tracer: t, id: t.seq, name: name, attrs: attrs, start: time.Now()}
	t.emitLocked(map[string]any{
		"ev":     "start",
		"id":     s.id,
		"parent": parent,
		"name":   name,
		"t_us":   s.start.Sub(t.epoch).Microseconds(),
		"attrs":  attrMap(attrs),
	})
	return s
}

// End closes the span. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = time.Now()
	if s.detached {
		return
	}
	t.emitLocked(map[string]any{
		"ev":     "end",
		"id":     s.id,
		"t_us":   s.end.Sub(t.epoch).Microseconds(),
		"dur_us": s.end.Sub(s.start).Microseconds(),
	})
}

// Annotate appends attributes to an already-open span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.detached {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tracer.mu.Unlock()
}

func (t *Tracer) emitLocked(ev map[string]any) {
	if t.opts.JSONL == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.opts.JSONL.Write(append(b, '\n')) // best effort
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// SpanNode is an immutable snapshot of one span, JSON-marshalable for
// the telemetry endpoint and the cecirun -stats dump.
type SpanNode struct {
	Name    string            `json:"name"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Running bool              `json:"running,omitempty"`
	// Dropped counts children beyond the MaxChildren cap.
	Dropped  int         `json:"dropped_children,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree snapshots the current span forest. Open spans report their
// duration so far and Running=true.
func (t *Tracer) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	out := make([]*SpanNode, len(t.roots))
	for i, s := range t.roots {
		out[i] = s.snapshotLocked(t, now)
	}
	return out
}

func (s *Span) snapshotLocked(t *Tracer, now time.Time) *SpanNode {
	n := &SpanNode{
		Name:    s.name,
		Attrs:   attrMap(s.attrs),
		StartUS: s.start.Sub(t.epoch).Microseconds(),
		Dropped: s.dropped,
	}
	if s.ended {
		n.DurUS = s.end.Sub(s.start).Microseconds()
	} else {
		n.DurUS = now.Sub(s.start).Microseconds()
		n.Running = true
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.snapshotLocked(t, now))
	}
	return n
}

// PhaseDurations aggregates span durations by name across the whole
// forest — the flat view stats.PhaseTrace used to provide, derived from
// the richer hierarchy.
//
// Semantics (locked in by TestPhaseDurationsSemantics):
//
//   - every recorded span contributes its full duration to the entry of
//     its name; repeated same-name spans (refine rounds, per-cluster
//     children) sum deterministically, including nested same-name spans
//     — the map is a flat by-name total, not a tree rollup;
//   - still-open spans contribute their elapsed-so-far, measured at one
//     instant captured once for the entire aggregation, so concurrent
//     open spans are mutually consistent;
//   - durations keep full time.Time resolution (no microsecond
//     truncation — earlier versions derived this map from Tree(), whose
//     µs-granular snapshot made repeated aggregations of the same
//     closed trace disagree below 1µs);
//   - detached spans (beyond the MaxChildren cap) are excluded, exactly
//     as they are from Tree().
func (t *Tracer) PhaseDurations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	out := make(map[string]time.Duration)
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.ended {
			out[s.name] += s.end.Sub(s.start)
		} else {
			out[s.name] += now.Sub(s.start)
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return out
}

// String renders the tree with indentation, children in start order.
func (t *Tracer) String() string {
	if t == nil {
		return "<nil tracer>"
	}
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%-*s %12v", strings.Repeat("  ", depth), 24-2*depth, n.Name,
			time.Duration(n.DurUS)*time.Microsecond)
		if n.Running {
			b.WriteString(" (running)")
		}
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
			}
		}
		if n.Dropped > 0 {
			fmt.Fprintf(&b, " +%d dropped", n.Dropped)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Tree() {
		walk(r, 0)
	}
	return b.String()
}
