package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/stats"
)

// DefaultProgressInterval is how often a Reporter fires when no interval
// is configured.
const DefaultProgressInterval = time.Second

// Progress is one live snapshot of an enumeration, delivered to a
// ProgressFunc at a fixed interval and once more (Final=true) when the
// enumeration ends.
//
// "Clusters" are the enumeration's scheduling units: whole embedding
// clusters under ST/CGD, cardinality-decomposed sub-clusters under FGD,
// and per-pivot clusters in the incremental and distributed modes.
type Progress struct {
	// Elapsed is wall time since the run began.
	Elapsed time.Duration `json:"elapsed"`
	// ClustersDone / ClustersTotal count completed scheduling units.
	ClustersDone  int64 `json:"clusters_done"`
	ClustersTotal int64 `json:"clusters_total"`
	// Embeddings found so far, and the run-average rate.
	Embeddings       int64   `json:"embeddings"`
	EmbeddingsPerSec float64 `json:"embeddings_per_sec"`
	// CardinalityDone / CardinalityTotal track the refined cluster
	// cardinalities (upper bounds the index computed for free), the
	// basis of the ETA estimate.
	CardinalityDone  int64 `json:"cardinality_done"`
	CardinalityTotal int64 `json:"cardinality_total"`
	// ETA extrapolates remaining time from completed cardinality (or,
	// lacking cardinalities, completed clusters); 0 when unknown.
	ETA time.Duration `json:"eta"`
	// WorkerBusy is per-worker busy time (nil when no clock is attached).
	WorkerBusy []time.Duration `json:"worker_busy,omitempty"`
	// Steals counts work-steal transfers (distributed mode).
	Steals int64 `json:"steals"`
	// Final marks the last report of a run.
	Final bool `json:"final,omitempty"`
}

// ProgressFunc receives progress snapshots. It is called from a reporter
// goroutine (and once from the enumerating goroutine for the final
// report); calls are serialized, and all counts are monotonically
// non-decreasing across calls.
type ProgressFunc func(Progress)

// Reporter aggregates live enumeration counters and periodically invokes
// a ProgressFunc. All Add* methods are cheap atomics, safe from any
// goroutine, and nil-safe.
type Reporter struct {
	fn       ProgressFunc
	interval time.Duration

	clustersDone  atomic.Int64
	clustersTotal atomic.Int64
	embeddings    atomic.Int64
	cardDone      atomic.Int64
	cardTotal     atomic.Int64
	steals        atomic.Int64

	mu      sync.Mutex // guards clock, start/stop state
	clock   *stats.WorkerClock
	start   time.Time
	running bool
	stop    chan struct{}
	done    chan struct{}

	emitMu sync.Mutex // serializes fn invocations (monotonicity)
}

// NewReporter builds a Reporter delivering to fn every interval
// (interval <= 0 means DefaultProgressInterval). fn may be nil, in which
// case the reporter only aggregates (useful for the telemetry endpoint).
func NewReporter(fn ProgressFunc, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return &Reporter{fn: fn, interval: interval}
}

// SetClock attaches a per-worker busy-time clock whose readings are
// included in every snapshot.
func (r *Reporter) SetClock(c *stats.WorkerClock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// AddTotals registers clusters scheduling units totalling card
// cardinality about to be enumerated.
func (r *Reporter) AddTotals(clusters int, card int64) {
	if r == nil {
		return
	}
	r.clustersTotal.Add(int64(clusters))
	r.cardTotal.Add(card)
}

// ClusterDone records completion of one scheduling unit of the given
// cardinality.
func (r *Reporter) ClusterDone(card int64) {
	if r == nil {
		return
	}
	r.clustersDone.Add(1)
	if card > 0 {
		r.cardDone.Add(card)
	}
}

// AddEmbeddings records n embeddings found.
func (r *Reporter) AddEmbeddings(n int64) {
	if r != nil && n != 0 {
		r.embeddings.Add(n)
	}
}

// AddSteals records n work-steal transfers.
func (r *Reporter) AddSteals(n int64) {
	if r != nil && n != 0 {
		r.steals.Add(n)
	}
}

// Start begins periodic reporting. Idempotent; the first call pins the
// run's start time.
func (r *Reporter) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	if r.start.IsZero() {
		r.start = time.Now()
	}
	r.running = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
}

func (r *Reporter) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.emit(false)
		case <-stop:
			return
		}
	}
}

// Stop ends periodic reporting and fires one final (Final=true) report.
// Idempotent.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	close(r.stop)
	done := r.done
	r.mu.Unlock()
	<-done
	r.emit(true)
}

func (r *Reporter) emit(final bool) {
	if r.fn == nil {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	r.fn(r.Snapshot(final))
}

// Snapshot captures the current progress. Counter reads are serialized
// relative to emit-driven snapshots only when called via the reporter's
// own delivery; direct callers (the telemetry endpoint) get a possibly
// slightly stale but internally consistent-enough view.
func (r *Reporter) Snapshot(final bool) Progress {
	if r == nil {
		return Progress{}
	}
	r.mu.Lock()
	start := r.start
	clock := r.clock
	r.mu.Unlock()

	p := Progress{
		ClustersDone:     r.clustersDone.Load(),
		ClustersTotal:    r.clustersTotal.Load(),
		Embeddings:       r.embeddings.Load(),
		CardinalityDone:  r.cardDone.Load(),
		CardinalityTotal: r.cardTotal.Load(),
		Steals:           r.steals.Load(),
		Final:            final,
	}
	if !start.IsZero() {
		p.Elapsed = time.Since(start)
	}
	if p.Elapsed > 0 {
		p.EmbeddingsPerSec = float64(p.Embeddings) / p.Elapsed.Seconds()
	}
	p.ETA = eta(p)
	if clock != nil {
		p.WorkerBusy = clock.BusyTimes()
	}
	return p
}

// eta extrapolates remaining wall time: proportionally from completed
// cardinality when refined cardinalities are known, else from completed
// cluster counts.
func eta(p Progress) time.Duration {
	if p.Elapsed <= 0 {
		return 0
	}
	if p.CardinalityDone > 0 && p.CardinalityTotal > p.CardinalityDone {
		ratio := float64(p.CardinalityTotal-p.CardinalityDone) / float64(p.CardinalityDone)
		return time.Duration(float64(p.Elapsed) * ratio)
	}
	if p.ClustersDone > 0 && p.ClustersTotal > p.ClustersDone {
		ratio := float64(p.ClustersTotal-p.ClustersDone) / float64(p.ClustersDone)
		return time.Duration(float64(p.Elapsed) * ratio)
	}
	return 0
}
