package prof

import (
	"sort"
	"time"

	"ceci/internal/obs"
	"ceci/internal/setops"
)

// Profile is the immutable result of one profiled execution —
// marshalable to JSON for -profile-json and the BENCH files, renderable
// as text for -explain-analyze. Vertices are indexed by query vertex ID;
// presentation order (the matching order) is the caller's concern.
type Profile struct {
	Strategy string          `json:"strategy,omitempty"`
	Vertices []VertexProfile `json:"vertices"`
	Clusters ClusterProfile  `json:"clusters"`
	Workers  []WorkerProfile `json:"workers,omitempty"`
	Phases   []Phase         `json:"phases,omitempty"`

	// Order names how the matching order was chosen — a heuristic name
	// ("bfs", "least-frequent", ...) or "auto:<candidate>" under the
	// cost-based planner; MatchingOrder is the order itself, by query
	// vertex ID. Recorded so order changes are visible in regression
	// gates comparing profiles.
	Order         string `json:"order,omitempty"`
	MatchingOrder []int  `json:"matching_order,omitempty"`

	// Planner is the cost-based planner's decision record: the estimate
	// of every order considered, and — when the run carried per-depth
	// observed selectivities — the estimated-vs-observed comparison.
	// Present only when planning was enabled.
	Planner *PlannerProfile `json:"planner,omitempty"`

	Histograms map[string]obs.HistogramSnapshot `json:"histograms,omitempty"`

	// Resources is the run's resource-ledger snapshot (CPU time, work
	// units, peak scratch footprint, kernel mix), attached by
	// ExplainAnalyze when a ledger rode the run.
	Resources *obs.QueryResources `json:"resources,omitempty"`
}

// PlannerProfile records one cost-based planning pass. Estimates are
// deterministic functions of (data, query, options); the Obs* fields
// derive from the run's per-depth funnel and are deterministic for a
// complete (unlimited, uncancelled) enumeration.
type PlannerProfile struct {
	Chosen   string  `json:"chosen"`
	Order    []int   `json:"order"`
	Estimate float64 `json:"estimate"`
	// Observed is the model re-evaluated with this run's observed
	// per-depth selectivities folded in — the number the service's drift
	// detector compares against Estimate (0 when no funnel rode the run).
	Observed   float64            `json:"observed,omitempty"`
	Calibrated bool               `json:"calibrated,omitempty"`
	Candidates []PlannerCandidate `json:"candidates,omitempty"`
	Depths     []PlannerDepth     `json:"depths,omitempty"`
}

// PlannerCandidate is one order the planner scored.
type PlannerCandidate struct {
	Name     string  `json:"name"`
	Order    []int   `json:"order"`
	Estimate float64 `json:"estimate"`
	Chosen   bool    `json:"chosen,omitempty"`
}

// PlannerDepth compares the model's per-depth expectations with what
// the enumeration observed at that matching-order position.
type PlannerDepth struct {
	Vertex   int     `json:"vertex"`
	EstCalls float64 `json:"est_calls"`
	EstOut   float64 `json:"est_out"`
	ObsCalls int64   `json:"obs_calls"`
	// ObsOut is the observed mean output per lookup (0 when the depth
	// was never reached).
	ObsOut float64 `json:"obs_out"`
}

// VertexProfile is one query vertex's per-stage accounting. The
// candidate funnel reads top to bottom: NeighborsScanned edges entered
// the forward BFS pass, the Dropped* stages removed some, TECandidates
// candidate edges were indexed, refinement and cascading removed
// FinalCands' complement, FinalCands distinct candidates survived.
type VertexProfile struct {
	Vertex   int   `json:"vertex"`
	OrderPos int   `json:"order_pos"`
	Parent   int   `json:"parent"` // -1 for the root
	Labels   []int `json:"labels,omitempty"`

	NeighborsScanned int64 `json:"neighbors_scanned"`
	DroppedLabel     int64 `json:"dropped_label"`
	DroppedDegree    int64 `json:"dropped_degree"`
	DroppedNLC       int64 `json:"dropped_nlc"`
	DroppedRefine    int64 `json:"dropped_refine"`
	DroppedCascade   int64 `json:"dropped_cascade"`

	FinalCands   int64 `json:"final_candidates"`
	TEEntries    int64 `json:"te_entries"`
	TECandidates int64 `json:"te_candidates"`
	TEBytes      int64 `json:"te_bytes"`
	// FlatBytes is the measured physical footprint of the frozen flat
	// structures (keys + offsets + arena + candidate/cardinality
	// columns); TEBytes/Bytes above are the paper's idealized
	// 8-bytes-per-candidate-edge accounting.
	FlatBytes int64 `json:"flat_bytes,omitempty"`

	NTE []NTEProfile `json:"nte,omitempty"`

	Enum EnumProfile `json:"enum"`
}

// NTEProfile is the accounting of one incoming non-tree edge.
type NTEProfile struct {
	Parent           int   `json:"parent"`
	Entries          int64 `json:"entries"`
	Candidates       int64 `json:"candidates"`
	Bytes            int64 `json:"bytes"`
	BuildComparisons int64 `json:"build_comparisons"`
	BuildOutput      int64 `json:"build_output"`
}

// EnumProfile is the enumeration-time intersection cost at one vertex.
// Comparisons is the merge-equivalent cost (summed input lengths —
// comparable across kernel choices and to pre-kernel baselines); Scanned
// is what the chosen kernels actually examined, split per kernel under
// Kernels. LabelPruned counts candidates the label-pair prune dropped
// before any kernel ran. All are deterministic functions of
// (data, query, options).
type EnumProfile struct {
	Lookups       int64           `json:"lookups"`
	Intersections int64           `json:"intersections"`
	Comparisons   int64           `json:"comparisons"`
	Scanned       int64           `json:"scanned,omitempty"`
	Output        int64           `json:"output"`
	LabelPruned   int64           `json:"label_pruned,omitempty"`
	Kernels       []KernelProfile `json:"kernels,omitempty"`
}

// KernelProfile is one adaptive intersection kernel's share of the
// enumeration work at one vertex. Kernels that never fired are omitted.
type KernelProfile struct {
	Kernel  string `json:"kernel"`
	Calls   int64  `json:"calls"`
	Scanned int64  `json:"scanned"`
	Emitted int64  `json:"emitted"`
}

// Dist summarizes a cardinality distribution.
type Dist struct {
	Count int     `json:"count"`
	Min   int64   `json:"min"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	Max   int64   `json:"max"`
	Total int64   `json:"total"`
	Skew  float64 `json:"skew"` // max / mean; 1.0 is perfectly uniform
}

// ClusterProfile captures the workload-balancing picture (Section 4.3):
// the raw embedding-cluster cardinalities and, under FGD, the unit
// distribution after ExtremeCluster decomposition.
type ClusterProfile struct {
	Pivots        Dist `json:"pivots"`
	Units         Dist `json:"units"`
	ExtremeSplits int  `json:"extreme_splits"` // units beyond the pivot count
}

// WorkerProfile is one worker's (or, in the distributed mode, one
// machine's) share of the enumeration.
type WorkerProfile struct {
	Worker int           `json:"worker"`
	Busy   time.Duration `json:"busy_ns"`
	Idle   time.Duration `json:"idle_ns"`
	Units  int64         `json:"units"`
	Steals int64         `json:"steals,omitempty"`
}

// Phase is one named span total from the tracer.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Snapshot captures the collector's current state. Safe to call while
// workers are still recording (values may be mid-run), but intended for
// after the enumeration completes.
func (c *Collector) Snapshot() Profile {
	if c == nil {
		return Profile{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	p := Profile{Strategy: c.strategy}
	p.Vertices = make([]VertexProfile, len(c.vertices))
	for u := range c.vertices {
		vc := &c.vertices[u]
		removed := vc.removed.Load()
		refined := vc.refined.Load()
		vp := VertexProfile{
			Vertex:           u,
			Parent:           -1,
			NeighborsScanned: vc.NeighborsScanned.Load(),
			DroppedLabel:     vc.DroppedLabel.Load(),
			DroppedDegree:    vc.DroppedDegree.Load(),
			DroppedNLC:       vc.DroppedNLC.Load(),
			DroppedRefine:    refined,
			DroppedCascade:   removed - refined,
			FinalCands:       vc.FinalCands.Load(),
			TEEntries:        vc.TEEntries.Load(),
			TECandidates:     vc.TECandidates.Load(),
			FlatBytes:        vc.FlatBytes.Load(),
			Enum: EnumProfile{
				Lookups:       vc.EnumLookups.Load(),
				Intersections: vc.EnumIntersections.Load(),
				Comparisons:   vc.EnumComparisons.Load(),
				Output:        vc.EnumOutput.Load(),
				LabelPruned:   vc.EnumLabelPruned.Load(),
			},
		}
		for k := 0; k < setops.NumKernels; k++ {
			calls := vc.KernelCalls[k].Load()
			if calls == 0 {
				continue
			}
			kp := KernelProfile{
				Kernel:  setops.Kernel(k).String(),
				Calls:   calls,
				Scanned: vc.KernelScanned[k].Load(),
				Emitted: vc.KernelEmitted[k].Load(),
			}
			vp.Enum.Scanned += kp.Scanned
			vp.Enum.Kernels = append(vp.Enum.Kernels, kp)
		}
		vp.TEBytes = 8 * vp.TECandidates // the paper's Table 2 accounting
		for j := range vc.nte {
			nc := &vc.nte[j]
			np := NTEProfile{
				Parent:           nc.Parent,
				Entries:          nc.Entries.Load(),
				Candidates:       nc.Candidates.Load(),
				BuildComparisons: nc.BuildComparisons.Load(),
				BuildOutput:      nc.BuildOutput.Load(),
			}
			np.Bytes = 8 * np.Candidates
			vp.NTE = append(vp.NTE, np)
		}
		p.Vertices[u] = vp
	}

	p.Clusters = ClusterProfile{
		Pivots: distOf(c.pivotCards),
		Units:  distOf(c.unitCards),
	}
	if n := len(c.unitCards) - len(c.pivotCards); n > 0 {
		p.Clusters.ExtremeSplits = n
	}

	wall := time.Duration(c.enumWallNS.Load())
	for i := range c.workers {
		w := &c.workers[i]
		busy := time.Duration(w.busyNS.Load())
		idle := wall - busy
		if idle < 0 {
			idle = 0
		}
		p.Workers = append(p.Workers, WorkerProfile{
			Worker: i,
			Busy:   busy,
			Idle:   idle,
			Units:  w.units.Load(),
			Steals: w.steals.Load(),
		})
	}

	p.Histograms = map[string]obs.HistogramSnapshot{
		"unit_seconds":        c.unitSeconds.Snapshot(),
		"cluster_cardinality": c.clusterCard.Snapshot(),
		"enum_candidates":     c.enumOutput.Snapshot(),
	}
	return p
}

// distOf summarizes cards (order-insensitive; the input is copied).
func distOf(cards []int64) Dist {
	d := Dist{Count: len(cards)}
	if len(cards) == 0 {
		return d
	}
	sorted := append([]int64(nil), cards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d.Min = sorted[0]
	d.Max = sorted[len(sorted)-1]
	d.P50 = sorted[quantileIdx(len(sorted), 0.50)]
	d.P95 = sorted[quantileIdx(len(sorted), 0.95)]
	for _, c := range sorted {
		d.Total += c
	}
	if mean := float64(d.Total) / float64(d.Count); mean > 0 {
		d.Skew = float64(d.Max) / mean
	}
	return d
}

func quantileIdx(n int, q float64) int {
	i := int(q * float64(n-1))
	if i >= n {
		i = n - 1
	}
	return i
}

// SetPhases fills the phase totals (typically from
// obs.Tracer.PhaseDurations), sorted by name for stable output.
func (p *Profile) SetPhases(d map[string]time.Duration) {
	p.Phases = p.Phases[:0]
	names := make([]string, 0, len(d))
	for n := range d {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p.Phases = append(p.Phases, Phase{Name: n, Duration: d[n]})
	}
}

// Canonical returns a copy with every timing- and scheduling-dependent
// field zeroed: worker breakdowns (which worker ran which unit is a
// scheduling accident), phase durations, and the wall-time histogram.
// What remains — filter funnels, index shape, intersection counts,
// cluster distributions — is a pure function of (data, query, options),
// so two runs with the same seed must produce identical Canonical
// profiles even under maximum parallelism. The determinism test in
// internal/enum relies on exactly this split.
func (p Profile) Canonical() Profile {
	out := p
	out.Workers = nil
	out.Phases = nil
	out.Resources = nil // CPU time and scratch peaks are scheduling accidents
	out.Histograms = make(map[string]obs.HistogramSnapshot, len(p.Histograms))
	for name, h := range p.Histograms {
		if name == "unit_seconds" {
			continue // bucketed by wall time: inherently nondeterministic
		}
		out.Histograms[name] = h
	}
	return out
}

// FunnelTotals sums the filter funnel across vertices — the compact
// summary the BENCH files embed.
func (p Profile) FunnelTotals() map[string]int64 {
	out := map[string]int64{}
	for _, v := range p.Vertices {
		out["neighbors_scanned"] += v.NeighborsScanned
		out["dropped_label"] += v.DroppedLabel
		out["dropped_degree"] += v.DroppedDegree
		out["dropped_nlc"] += v.DroppedNLC
		out["dropped_refine"] += v.DroppedRefine
		out["dropped_cascade"] += v.DroppedCascade
		out["final_candidates"] += v.FinalCands
		out["index_flat_bytes"] += v.FlatBytes
		out["enum_comparisons"] += v.Enum.Comparisons
		out["enum_scanned"] += v.Enum.Scanned
		out["enum_label_pruned"] += v.Enum.LabelPruned
		out["enum_output"] += v.Enum.Output
		for _, k := range v.Enum.Kernels {
			out["enum_kernel_"+k.Kernel+"_calls"] += k.Calls
			out["enum_kernel_"+k.Kernel+"_scanned"] += k.Scanned
		}
	}
	return out
}
