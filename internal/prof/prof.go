// Package prof is the EXPLAIN ANALYZE layer: a concurrency-safe
// Collector that the index builder (internal/ceci), the enumerator
// (internal/enum), and the distributed runtime (internal/cluster) feed
// while executing a query with profiling enabled, and an immutable
// Profile snapshot that exposes what the paper's evaluation measures but
// the code never surfaced — per-query-vertex filter funnels (label /
// degree / NLC forward pass, reverse-BFS refinement, cascade deletion;
// Algorithms 1–2), TE/NTE entry counts and bytes, per-NTE set-
// intersection comparisons versus output size (Section 4.1, Lemma 2),
// the cluster-cardinality distribution that drives ST/CGD/FGD balancing
// (Section 4.3, Algorithm 3), and per-worker busy/steal/idle time.
//
// A nil *Collector turns every method into a no-op, and every hot-path
// call site guards with a single nil check, so profiling disabled costs
// one predictable branch.
package prof

import (
	"sync"
	"sync/atomic"
	"time"

	"ceci/internal/obs"
	"ceci/internal/setops"
)

// Collector accumulates one profiled execution. Create with New, attach
// to the build and enumeration options, then Snapshot after the run.
// All recording methods are safe for concurrent use from any number of
// build or enumeration workers.
type Collector struct {
	initialized atomic.Bool

	mu       sync.Mutex
	vertices []VertexCounters
	workers  []workerSlot

	strategy   string
	pivotCards []int64
	unitCards  []int64
	enumWallNS atomic.Int64

	unitSeconds *obs.Histogram
	clusterCard *obs.Histogram
	enumOutput  *obs.Histogram
}

// New returns an empty collector with the default histogram buckets.
func New() *Collector {
	return &Collector{
		unitSeconds: obs.NewHistogram(obs.LatencyBuckets()),
		clusterCard: obs.NewHistogram(obs.SizeBuckets()),
		enumOutput:  obs.NewHistogram(obs.SizeBuckets()),
	}
}

// Histograms exposes the collector's histograms for registration on an
// obs.Registry (rendered as ceci_profile_* series).
func (c *Collector) Histograms() map[string]*obs.Histogram {
	if c == nil {
		return nil
	}
	return map[string]*obs.Histogram{
		"profile_unit_seconds":        c.unitSeconds,
		"profile_cluster_cardinality": c.clusterCard,
		"profile_enum_candidates":     c.enumOutput,
	}
}

// VertexCounters holds one query vertex's live counters. Fields are
// atomics so build workers (which partition the frontier) and
// enumeration workers (which share the index) can update without locks.
type VertexCounters struct {
	// Forward BFS filter funnel (Algorithm 1): every data-graph
	// neighbor scanned while expanding frontiers toward this vertex,
	// and how many each filter stage dropped.
	NeighborsScanned atomic.Int64
	DroppedLabel     atomic.Int64
	DroppedDegree    atomic.Int64
	DroppedNLC       atomic.Int64

	// Backward pruning: refined counts the candidates deleted because
	// reverse-BFS refinement proved their cardinality zero (Algorithm
	// 2); removed counts every candidate deletion of this vertex, so
	// cascade deletions = removed - refined.
	refined atomic.Int64
	removed atomic.Int64

	// Index shape, accumulated when each build completes (the
	// incremental mode builds one cluster at a time; totals sum).
	FinalCands   atomic.Int64
	TEEntries    atomic.Int64
	TECandidates atomic.Int64
	// FlatBytes is the physical footprint of the vertex's frozen flat
	// structures — keys, offsets, arena, candidate and cardinality
	// columns — as opposed to TEBytes' idealized Table-2 accounting.
	FlatBytes atomic.Int64
	nte       []NTECounters

	// Enumeration-time intersection cost (Section 4.1): lookups is the
	// number of CandidatesFor calls, comparisons the summed lengths of
	// the intersected lists (the work a merge-based intersection
	// performs), output the summed result sizes.
	EnumLookups       atomic.Int64
	EnumIntersections atomic.Int64
	EnumComparisons   atomic.Int64
	EnumOutput        atomic.Int64

	// Per-kernel enumeration work (the internal/setops adaptive kernels,
	// indexed by setops.Kernel): how often each kernel fired, the
	// elements/words it actually examined (versus EnumComparisons' merge-
	// equivalent cost above), and what it emitted. EnumLabelPruned counts
	// candidates the label-pair prune dropped before any kernel ran.
	KernelCalls     [setops.NumKernels]atomic.Int64
	KernelScanned   [setops.NumKernels]atomic.Int64
	KernelEmitted   [setops.NumKernels]atomic.Int64
	EnumLabelPruned atomic.Int64
}

// AddKernelStats accumulates a per-kernel work delta (typically one
// enumeration step's setops.KernelStats difference) into the counters.
func (v *VertexCounters) AddKernelStats(d setops.KernelStats) {
	for k := 0; k < setops.NumKernels; k++ {
		if d.Calls[k] != 0 {
			v.KernelCalls[k].Add(d.Calls[k])
			v.KernelScanned[k].Add(d.Scanned[k])
			v.KernelEmitted[k].Add(d.Emitted[k])
		}
	}
}

// NTECounters profiles one incoming non-tree edge of a query vertex.
type NTECounters struct {
	Parent int // query vertex the non-tree edge arrives from

	// Build-time cost of filling this NTE_Candidates structure: the
	// summed lengths of the intersected adjacency/candidate lists
	// versus what survived.
	BuildComparisons atomic.Int64
	BuildOutput      atomic.Int64

	Entries    atomic.Int64
	Candidates atomic.Int64
}

type workerSlot struct {
	busyNS atomic.Int64
	units  atomic.Int64
	steals atomic.Int64
}

// InitQuery sizes the per-vertex state for a query of n vertices whose
// non-tree-edge parents are given by nteParents (indexed by query
// vertex). Idempotent: only the first call takes effect, so the
// incremental mode's per-cluster builds can all pass the same tree.
func (c *Collector) InitQuery(n int, nteParents func(u int) []int) {
	if c == nil || c.initialized.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.initialized.Load() {
		return
	}
	c.vertices = make([]VertexCounters, n)
	for u := 0; u < n; u++ {
		parents := nteParents(u)
		c.vertices[u].nte = make([]NTECounters, len(parents))
		for j, p := range parents {
			c.vertices[u].nte[j].Parent = p
		}
	}
	c.initialized.Store(true)
}

// Vertex returns query vertex u's counters. Callers must have observed
// a completed InitQuery (the builder calls it before spawning workers)
// and must guard the collector itself against nil.
func (c *Collector) Vertex(u int) *VertexCounters { return &c.vertices[u] }

// NTE returns the counters of v's j-th incoming non-tree edge.
func (v *VertexCounters) NTE(j int) *NTECounters { return &v.nte[j] }

// AddRefined counts candidates of this vertex deleted by refinement.
func (v *VertexCounters) AddRefined(n int64) { v.refined.Add(n) }

// AddRemoved counts any candidate deletion of this vertex (refinement,
// cascade, or dead-frontier removal).
func (v *VertexCounters) AddRemoved(n int64) { v.removed.Add(n) }

// RecordClusters registers the scheduling outcome of one enumeration:
// the per-pivot refined cardinalities and the per-unit cardinalities
// after (possible) ExtremeCluster decomposition. Accumulates across
// calls so the distributed mode can record per machine.
func (c *Collector) RecordClusters(strategy string, pivotCards, unitCards []int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.strategy = strategy
	c.pivotCards = append(c.pivotCards, pivotCards...)
	c.unitCards = append(c.unitCards, unitCards...)
	c.mu.Unlock()
	for _, card := range pivotCards {
		c.clusterCard.ObserveInt(card)
	}
}

// EnsureWorkers grows the per-worker slot table to at least n entries.
func (c *Collector) EnsureWorkers(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for len(c.workers) < n {
		c.workers = append(c.workers, workerSlot{})
	}
	c.mu.Unlock()
}

// WorkerUnit charges one completed work unit to worker id: its wall
// duration and (implicitly) one unit. Requires a prior EnsureWorkers.
func (c *Collector) WorkerUnit(id int, d time.Duration) {
	if c == nil || id < 0 || id >= len(c.workers) {
		return
	}
	w := &c.workers[id]
	w.busyNS.Add(int64(d))
	w.units.Add(1)
	c.unitSeconds.ObserveDuration(d)
}

// RecordWorker charges busy time, unit count, and steal count to worker
// id in one call. The distributed mode uses this — it accounts per
// machine from the cost ledger at machine exit instead of per unit.
func (c *Collector) RecordWorker(id int, busy time.Duration, units, steals int64) {
	if c == nil || id < 0 || id >= len(c.workers) {
		return
	}
	w := &c.workers[id]
	w.busyNS.Add(int64(busy))
	w.units.Add(units)
	w.steals.Add(steals)
}

// WorkerSteals charges n work-steal transfers to worker id.
func (c *Collector) WorkerSteals(id int, n int64) {
	if c == nil || id < 0 || id >= len(c.workers) {
		return
	}
	c.workers[id].steals.Add(n)
}

// ObserveEnumOutput feeds the candidate-list-size histogram with one
// intersection result size.
func (c *Collector) ObserveEnumOutput(n int) {
	if c == nil {
		return
	}
	c.enumOutput.ObserveInt(int64(n))
}

// AddEnumWall records the enumeration's wall-clock time (the basis of
// the per-worker idle computation). Accumulates across phases.
func (c *Collector) AddEnumWall(d time.Duration) {
	if c == nil {
		return
	}
	c.enumWallNS.Add(int64(d))
}
