package prof

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Text renders the profile as the EXPLAIN ANALYZE report: the
// per-vertex filter funnel, TE/NTE index shape, enumeration-time
// intersection stats, cluster-cardinality distribution, per-worker
// utilization, and phase durations.
func (p Profile) Text() string {
	var b strings.Builder

	if pp := p.Planner; pp != nil {
		b.WriteString("== planner ==\n")
		fmt.Fprintf(&b, "chosen: %s  estimate %.4g", pp.Chosen, pp.Estimate)
		if pp.Observed > 0 {
			ratio := "-"
			if pp.Estimate > 0 {
				ratio = fmt.Sprintf("%.2fx", pp.Observed/pp.Estimate)
			}
			fmt.Fprintf(&b, "  observed %.4g (%s)", pp.Observed, ratio)
		}
		if pp.Calibrated {
			b.WriteString("  [calibrated]")
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  %-16s %12s  %s\n", "candidate", "estimate", "order")
		for _, c := range pp.Candidates {
			mark := " "
			if c.Chosen {
				mark = "*"
			}
			fmt.Fprintf(&b, "%s %-16s %12.4g  %s\n", mark, c.Name, c.Estimate, orderString(c.Order))
		}
		if len(pp.Depths) > 0 {
			fmt.Fprintf(&b, "  %4s %4s %12s %10s %12s %10s\n",
				"pos", "u", "est_calls", "est_out", "obs_calls", "obs_out")
			for i, d := range pp.Depths {
				fmt.Fprintf(&b, "  %4d %4s %12.4g %10.3g %12d %10.3g\n",
					i, fmt.Sprintf("u%d", d.Vertex), d.EstCalls, d.EstOut, d.ObsCalls, d.ObsOut)
			}
		}
		b.WriteByte('\n')
	}
	if p.Order != "" {
		fmt.Fprintf(&b, "matching order (%s): %s\n\n", p.Order, orderString(p.MatchingOrder))
	}

	b.WriteString("== filter funnel (per query vertex) ==\n")
	fmt.Fprintf(&b, "%4s %4s %6s  %10s %9s %9s %9s %9s %9s %10s\n",
		"pos", "u", "parent", "scanned", "-label", "-degree", "-nlc", "-refine", "-cascade", "final")
	order := make([]int, len(p.Vertices))
	for i := range p.Vertices {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return p.Vertices[order[i]].OrderPos < p.Vertices[order[j]].OrderPos
	})
	for _, u := range order {
		v := p.Vertices[u]
		parent := "-"
		if v.Parent >= 0 {
			parent = fmt.Sprintf("u%d", v.Parent)
		}
		fmt.Fprintf(&b, "%4d %4s %6s  %10d %9d %9d %9d %9d %9d %10d\n",
			v.OrderPos, fmt.Sprintf("u%d", v.Vertex), parent,
			v.NeighborsScanned, v.DroppedLabel, v.DroppedDegree, v.DroppedNLC,
			v.DroppedRefine, v.DroppedCascade, v.FinalCands)
	}

	b.WriteString("\n== index shape (TE / NTE) ==\n")
	fmt.Fprintf(&b, "%4s  %10s %12s %10s  %s\n", "u", "te_entries", "te_cands", "te_bytes", "nte (parent: entries/cands/bytes, build cmp->out)")
	for _, u := range order {
		v := p.Vertices[u]
		var ntes []string
		for _, n := range v.NTE {
			ntes = append(ntes, fmt.Sprintf("u%d: %d/%d/%s, %d->%d",
				n.Parent, n.Entries, n.Candidates, formatByteCount(n.Bytes),
				n.BuildComparisons, n.BuildOutput))
		}
		nteCol := "-"
		if len(ntes) > 0 {
			nteCol = strings.Join(ntes, "; ")
		}
		fmt.Fprintf(&b, "%4s  %10d %12d %10s  %s\n",
			fmt.Sprintf("u%d", v.Vertex), v.TEEntries, v.TECandidates,
			formatByteCount(v.TEBytes), nteCol)
	}

	b.WriteString("\n== enumeration intersections (per query vertex) ==\n")
	fmt.Fprintf(&b, "%4s  %10s %12s %13s %12s %11s\n",
		"u", "lookups", "intersects", "comparisons", "output", "selectivity")
	for _, u := range order {
		v := p.Vertices[u]
		e := v.Enum
		if e.Lookups == 0 && e.Comparisons == 0 {
			continue
		}
		sel := "-"
		if e.Comparisons > 0 {
			sel = fmt.Sprintf("%.4f", float64(e.Output)/float64(e.Comparisons))
		}
		fmt.Fprintf(&b, "%4s  %10d %12d %13d %12d %11s\n",
			fmt.Sprintf("u%d", v.Vertex), e.Lookups, e.Intersections, e.Comparisons, e.Output, sel)
	}

	hasKernels := false
	for _, v := range p.Vertices {
		if len(v.Enum.Kernels) > 0 || v.Enum.LabelPruned > 0 {
			hasKernels = true
			break
		}
	}
	if hasKernels {
		b.WriteString("\n== intersection kernels (per query vertex) ==\n")
		fmt.Fprintf(&b, "%4s  %-28s %12s %12s\n", "u", "kernel: calls/scanned/emitted", "scanned", "label_pruned")
		for _, u := range order {
			v := p.Vertices[u]
			e := v.Enum
			if len(e.Kernels) == 0 && e.LabelPruned == 0 {
				continue
			}
			var ks []string
			for _, k := range e.Kernels {
				ks = append(ks, fmt.Sprintf("%s: %d/%d/%d", k.Kernel, k.Calls, k.Scanned, k.Emitted))
			}
			col := "-"
			if len(ks) > 0 {
				col = strings.Join(ks, "; ")
			}
			fmt.Fprintf(&b, "%4s  %-28s %12d %12d\n",
				fmt.Sprintf("u%d", v.Vertex), col, e.Scanned, e.LabelPruned)
		}
	}

	b.WriteString("\n== cluster cardinality distribution ==\n")
	if p.Strategy != "" {
		fmt.Fprintf(&b, "strategy: %s\n", p.Strategy)
	}
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %8s %10s %8s\n",
		"", "count", "min", "p50", "p95", "max", "total", "skew")
	writeDist(&b, "pivots", p.Clusters.Pivots)
	writeDist(&b, "units", p.Clusters.Units)
	if p.Clusters.ExtremeSplits > 0 {
		fmt.Fprintf(&b, "extreme-cluster splits: %d additional units\n", p.Clusters.ExtremeSplits)
	}

	if len(p.Workers) > 0 {
		b.WriteString("\n== workers ==\n")
		fmt.Fprintf(&b, "%6s %12s %12s %8s %8s %8s\n",
			"worker", "busy", "idle", "util", "units", "steals")
		for _, w := range p.Workers {
			util := "-"
			if total := w.Busy + w.Idle; total > 0 {
				util = fmt.Sprintf("%.0f%%", 100*float64(w.Busy)/float64(total))
			}
			fmt.Fprintf(&b, "%6d %12v %12v %8s %8d %8d\n",
				w.Worker, w.Busy.Round(time.Microsecond), w.Idle.Round(time.Microsecond),
				util, w.Units, w.Steals)
		}
	}

	if len(p.Phases) > 0 {
		b.WriteString("\n== phases ==\n")
		for _, ph := range p.Phases {
			fmt.Fprintf(&b, "%-24s %12v\n", ph.Name, ph.Duration.Round(time.Microsecond))
		}
	}

	if p.Resources != nil {
		b.WriteString("\n== resources ==\n")
		b.WriteString(p.Resources.Text())
	}

	return b.String()
}

func orderString(ord []int) string {
	parts := make([]string, len(ord))
	for i, u := range ord {
		parts[i] = fmt.Sprintf("u%d", u)
	}
	return strings.Join(parts, " ")
}

func writeDist(b *strings.Builder, name string, d Dist) {
	fmt.Fprintf(b, "%-8s %8d %8d %8d %8d %8d %10d %8.2f\n",
		name, d.Count, d.Min, d.P50, d.P95, d.Max, d.Total, d.Skew)
}

func formatByteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
