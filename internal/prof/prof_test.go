package prof

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func initTriangle(c *Collector) {
	// 3-vertex query; u2 has one NTE from u0.
	c.InitQuery(3, func(u int) []int {
		if u == 2 {
			return []int{0}
		}
		return nil
	})
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.InitQuery(3, nil)
	c.RecordClusters("ST", []int64{1}, []int64{1})
	c.EnsureWorkers(4)
	c.WorkerUnit(0, time.Second)
	c.WorkerSteals(0, 1)
	c.ObserveEnumOutput(5)
	c.AddEnumWall(time.Second)
	if c.Histograms() != nil {
		t.Fatal("nil collector histograms")
	}
	p := c.Snapshot()
	if len(p.Vertices) != 0 || len(p.Workers) != 0 {
		t.Fatalf("nil snapshot = %+v", p)
	}
}

func TestCollectorFunnelAndCascade(t *testing.T) {
	c := New()
	initTriangle(c)

	v1 := c.Vertex(1)
	v1.NeighborsScanned.Add(100)
	v1.DroppedLabel.Add(40)
	v1.DroppedDegree.Add(10)
	v1.DroppedNLC.Add(5)
	v1.AddRefined(3)
	v1.AddRemoved(3) // the refine-initiated removals
	v1.AddRemoved(4) // cascade removals
	v1.FinalCands.Add(38)
	v1.TEEntries.Add(12)
	v1.TECandidates.Add(38)

	nte := c.Vertex(2).NTE(0)
	nte.BuildComparisons.Add(50)
	nte.BuildOutput.Add(20)
	nte.Entries.Add(10)
	nte.Candidates.Add(20)

	p := c.Snapshot()
	got := p.Vertices[1]
	if got.DroppedRefine != 3 || got.DroppedCascade != 4 {
		t.Fatalf("refine/cascade = %d/%d, want 3/4", got.DroppedRefine, got.DroppedCascade)
	}
	if got.TEBytes != 8*38 {
		t.Fatalf("te_bytes = %d", got.TEBytes)
	}
	n := p.Vertices[2].NTE[0]
	if n.Parent != 0 || n.Bytes != 8*20 || n.BuildComparisons != 50 {
		t.Fatalf("nte = %+v", n)
	}

	totals := p.FunnelTotals()
	if totals["dropped_label"] != 40 || totals["final_candidates"] != 38 {
		t.Fatalf("funnel totals = %v", totals)
	}
}

func TestInitQueryIdempotent(t *testing.T) {
	c := New()
	initTriangle(c)
	c.Vertex(0).FinalCands.Add(7)
	// A second init (as the incremental mode's per-cluster builds issue)
	// must not reset accumulated counters.
	initTriangle(c)
	if got := c.Snapshot().Vertices[0].FinalCands; got != 7 {
		t.Fatalf("second InitQuery reset counters: final = %d", got)
	}
}

func TestDistQuantiles(t *testing.T) {
	cards := []int64{10, 1, 5, 2, 100, 3, 4, 6, 7, 8}
	d := distOf(cards)
	if d.Count != 10 || d.Min != 1 || d.Max != 100 || d.Total != 146 {
		t.Fatalf("dist = %+v", d)
	}
	if d.P50 != 5 { // sorted[4] of [1 2 3 4 5 6 7 8 10 100]
		t.Fatalf("p50 = %d, want 5", d.P50)
	}
	if d.P95 != 10 { // sorted[int(0.95*9)] = sorted[8]
		t.Fatalf("p95 = %d, want 10", d.P95)
	}
	if want := 100 / 14.6; d.Skew < want-0.01 || d.Skew > want+0.01 {
		t.Fatalf("skew = %g, want ~%g", d.Skew, want)
	}
	if empty := distOf(nil); empty.Count != 0 || empty.Skew != 0 {
		t.Fatalf("empty dist = %+v", empty)
	}
}

func TestClustersAndWorkers(t *testing.T) {
	c := New()
	initTriangle(c)
	c.RecordClusters("FGD", []int64{100, 2, 3}, []int64{50, 50, 2, 3})
	c.EnsureWorkers(2)
	c.WorkerUnit(0, 30*time.Millisecond)
	c.WorkerUnit(0, 30*time.Millisecond)
	c.WorkerUnit(1, 20*time.Millisecond)
	c.WorkerSteals(1, 3)
	c.AddEnumWall(80 * time.Millisecond)

	p := c.Snapshot()
	if p.Strategy != "FGD" {
		t.Fatalf("strategy = %q", p.Strategy)
	}
	if p.Clusters.Pivots.Count != 3 || p.Clusters.Units.Count != 4 {
		t.Fatalf("clusters = %+v", p.Clusters)
	}
	if p.Clusters.ExtremeSplits != 1 {
		t.Fatalf("extreme splits = %d, want 1", p.Clusters.ExtremeSplits)
	}
	if len(p.Workers) != 2 {
		t.Fatalf("workers = %d", len(p.Workers))
	}
	w0, w1 := p.Workers[0], p.Workers[1]
	if w0.Busy != 60*time.Millisecond || w0.Units != 2 {
		t.Fatalf("worker0 = %+v", w0)
	}
	if w0.Idle != 20*time.Millisecond || w1.Idle != 60*time.Millisecond {
		t.Fatalf("idle = %v/%v", w0.Idle, w1.Idle)
	}
	if w1.Steals != 3 {
		t.Fatalf("steals = %d", w1.Steals)
	}
	if h := p.Histograms["cluster_cardinality"]; h.Count != 3 {
		t.Fatalf("cluster histogram count = %d, want 3 (pivots only)", h.Count)
	}
	if h := p.Histograms["unit_seconds"]; h.Count != 3 {
		t.Fatalf("unit_seconds count = %d, want 3", h.Count)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := New()
	initTriangle(c)
	c.EnsureWorkers(8)
	const each = 5000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := c.Vertex(w % 3)
			for i := 0; i < each; i++ {
				v.NeighborsScanned.Add(1)
				c.WorkerUnit(w, time.Microsecond)
				c.ObserveEnumOutput(i % 10)
			}
		}(w)
	}
	wg.Wait()
	p := c.Snapshot()
	var scanned int64
	for _, v := range p.Vertices {
		scanned += v.NeighborsScanned
	}
	if scanned != 8*each {
		t.Fatalf("scanned = %d, want %d (lost updates)", scanned, 8*each)
	}
	var units int64
	for _, w := range p.Workers {
		units += w.Units
	}
	if units != 8*each {
		t.Fatalf("units = %d, want %d", units, 8*each)
	}
	if h := p.Histograms["enum_candidates"]; h.Count != 8*each {
		t.Fatalf("enum histogram = %d, want %d", h.Count, 8*each)
	}
}

func TestCanonicalStripsTimings(t *testing.T) {
	c := New()
	initTriangle(c)
	c.Vertex(0).FinalCands.Add(9)
	c.RecordClusters("ST", []int64{4}, []int64{4})
	c.EnsureWorkers(1)
	c.WorkerUnit(0, time.Millisecond)
	c.AddEnumWall(time.Millisecond)

	p := c.Snapshot()
	p.SetPhases(map[string]time.Duration{"build": time.Second})

	canon := p.Canonical()
	if canon.Workers != nil || canon.Phases != nil {
		t.Fatalf("canonical kept scheduling state: %+v", canon)
	}
	if _, ok := canon.Histograms["unit_seconds"]; ok {
		t.Fatal("canonical kept wall-time histogram")
	}
	if _, ok := canon.Histograms["cluster_cardinality"]; !ok {
		t.Fatal("canonical dropped deterministic histogram")
	}
	// Two snapshots of the same collector canonicalize identically.
	if !reflect.DeepEqual(canon, c.Snapshot().Canonical()) {
		t.Fatal("canonical not stable across snapshots")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	c := New()
	initTriangle(c)
	c.Vertex(2).NTE(0).Candidates.Add(11)
	c.RecordClusters("CGD", []int64{5, 6}, []int64{5, 6})
	p := c.Snapshot()
	p.SetPhases(map[string]time.Duration{"build": time.Millisecond, "enumerate": time.Second})
	if p.Phases[0].Name != "build" || p.Phases[1].Name != "enumerate" {
		t.Fatalf("phases unsorted: %+v", p.Phases)
	}

	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, back)
	}
}

func TestProfileText(t *testing.T) {
	c := New()
	initTriangle(c)
	v := c.Vertex(1)
	v.NeighborsScanned.Add(100)
	v.DroppedLabel.Add(40)
	v.FinalCands.Add(60)
	v.EnumLookups.Add(2)
	v.EnumComparisons.Add(10)
	v.EnumOutput.Add(4)
	c.Vertex(2).NTE(0).Candidates.Add(7)
	c.RecordClusters("FGD", []int64{9}, []int64{5, 4})
	c.EnsureWorkers(1)
	c.WorkerUnit(0, time.Millisecond)

	p := c.Snapshot()
	p.SetPhases(map[string]time.Duration{"build": time.Millisecond})
	out := p.Text()
	for _, want := range []string{
		"filter funnel", "-label", "index shape", "enumeration intersections",
		"cluster cardinality distribution", "strategy: FGD",
		"extreme-cluster splits: 1", "workers", "phases", "0.4000", // selectivity 4/10
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text missing %q:\n%s", want, out)
		}
	}
}
