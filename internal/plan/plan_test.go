package plan_test

import (
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/plan"
)

func TestDecideFig1(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, dec, err := plan.Choose(data, query, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || dec == nil {
		t.Fatal("nil tree or decision")
	}
	if dec.Estimate <= 0 {
		t.Fatalf("estimate = %v, want > 0", dec.Estimate)
	}
	if len(dec.Candidates) == 0 {
		t.Fatal("no candidates scored")
	}
	for _, c := range dec.Candidates {
		if c.Cost < dec.Estimate {
			t.Fatalf("chosen %q (%.1f) is not the cheapest: %q costs %.1f",
				dec.Chosen, dec.Estimate, c.Name, c.Cost)
		}
		if len(c.Order) != query.NumVertices() {
			t.Fatalf("candidate %q has short order %v", c.Name, c.Order)
		}
	}
	if len(tree.Order) != query.NumVertices() || tree.Order[0] != tree.Root {
		t.Fatalf("chosen tree order invalid: %v", tree.Order)
	}
	// The decision's order and the installed tree's must agree.
	for i := range dec.Order {
		if dec.Order[i] != tree.Order[i] {
			t.Fatalf("decision order %v != tree order %v", dec.Order, tree.Order)
		}
	}
}

func TestDecisionDeterministic(t *testing.T) {
	data, query := gen.RandomPair(42)
	_, a, err := plan.Choose(data, query, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := plan.Choose(data, query, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Chosen != b.Chosen || a.Estimate != b.Estimate {
		t.Fatalf("planning not deterministic: %q/%.3f vs %q/%.3f",
			a.Chosen, a.Estimate, b.Chosen, b.Estimate)
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("orders differ: %v vs %v", a.Order, b.Order)
		}
	}
}

// TestPlannerOrdersTreeConsistent is the property test of the PR: every
// order the planner produces or considers — for fuzz-generated query
// graphs across a seed sweep — must be tree-consistent (no vertex
// before its TE parent) and a permutation starting at the root.
func TestPlannerOrdersTreeConsistent(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(1); seed <= seeds; seed++ {
		data, query := gen.RandomPair(seed)
		p, err := plan.New(data, query, plan.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dec, err := p.Decide(nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := p.Base()
		for _, c := range dec.Candidates {
			checkTreeConsistent(t, seed, c.Name, base, c.Order)
		}
		checkTreeConsistent(t, seed, "chosen:"+dec.Chosen, base, dec.Order)
		// The installed tree must agree with its own classification.
		tree := dec.Tree
		for u := range tree.NTEParents {
			for _, pp := range tree.NTEParents[u] {
				if tree.Pos[pp] >= tree.Pos[u] {
					t.Fatalf("seed %d: NTE parent u%d not before u%d", seed, pp, u)
				}
			}
		}
	}
}

func checkTreeConsistent(t *testing.T, seed int64, name string, base *order.QueryTree, ord []graph.VertexID) {
	t.Helper()
	n := base.NumVertices()
	if len(ord) != n {
		t.Fatalf("seed %d %s: order has %d of %d vertices", seed, name, len(ord), n)
	}
	if ord[0] != base.Root {
		t.Fatalf("seed %d %s: order %v does not start at root u%d", seed, name, ord, base.Root)
	}
	seen := make([]bool, n)
	for _, u := range ord {
		if seen[u] {
			t.Fatalf("seed %d %s: order %v repeats u%d", seed, name, ord, u)
		}
		if p := base.Parent[u]; p != order.NoParent && !seen[p] {
			t.Fatalf("seed %d %s: order %v visits u%d before parent u%d", seed, name, ord, u, p)
		}
		seen[u] = true
	}
}

// TestGreedyPrefersSelectiveVertex: on the tie fixture (one rare leaf,
// two common ones) the greedy order must visit the rare leaf first —
// the model's whole point.
func TestGreedyPrefersSelectiveVertex(t *testing.T) {
	db := graph.NewBuilder(8)
	db.SetLabel(0, 0)
	for v := 1; v <= 6; v++ {
		db.SetLabel(graph.VertexID(v), 1)
		db.AddEdge(0, graph.VertexID(v))
	}
	db.SetLabel(7, 2)
	db.AddEdge(0, 7)
	data := db.MustBuild()

	qb := graph.NewBuilder(4)
	qb.SetLabel(0, 0)
	qb.SetLabel(1, 1)
	qb.SetLabel(2, 1)
	qb.SetLabel(3, 2)
	qb.AddEdge(0, 1)
	qb.AddEdge(0, 2)
	qb.AddEdge(0, 3)
	query := qb.MustBuild()

	p, err := plan.New(data, query, plan.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.Decide(nil)
	if err != nil {
		t.Fatal(err)
	}
	var greedy *plan.Candidate
	for i := range dec.Candidates {
		if dec.Candidates[i].Name == plan.GreedyName {
			greedy = &dec.Candidates[i]
		}
	}
	if greedy == nil {
		// The greedy order may have been deduplicated into a heuristic
		// candidate; the chosen order must still lead with the rare leaf.
		if dec.Order[1] != 3 {
			t.Fatalf("chosen order %v does not visit the rare leaf first", dec.Order)
		}
		return
	}
	if greedy.Order[1] != 3 {
		t.Fatalf("greedy order %v does not visit the rare leaf first", greedy.Order)
	}
}

// TestCalibrationShiftsEstimate: ratios above 1 must raise the
// calibrated cost, and Calibration must clamp extremes.
func TestCalibrationShiftsEstimate(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	p, err := plan.New(data, query, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.Decide(nil)
	if err != nil {
		t.Fatal(err)
	}
	n := query.NumVertices()
	lookups := make([]int64, n)
	emitted := make([]int64, n)
	for d := 1; d < n; d++ {
		lookups[d] = 10
		emitted[d] = 10_000 // far above any prediction: clamps at 64x
	}
	calib := dec.Calibration(lookups, emitted)
	if calib == nil {
		t.Fatal("calibration returned nil despite observations")
	}
	for d := 1; d < n; d++ {
		u := dec.Order[d]
		if calib[u] < 1 || calib[u] > 64 {
			t.Fatalf("calib[u%d] = %v outside (1, 64]", u, calib[u])
		}
	}
	recal := p.EstimateOrder("recal", dec.Order, calib)
	if recal.Cost <= dec.Estimate {
		t.Fatalf("calibrated cost %.1f not above estimate %.1f", recal.Cost, dec.Estimate)
	}
	// No observations -> nil.
	if c := dec.Calibration(make([]int64, n), make([]int64, n)); c != nil {
		t.Fatalf("empty observations produced calibration %v", c)
	}
}

func TestSingleVertexQuery(t *testing.T) {
	data := gen.Fig1Data()
	qb := graph.NewBuilder(1)
	qb.SetLabel(0, 0)
	query := qb.MustBuild()
	tree, dec, err := plan.Choose(data, query, plan.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Order) != 1 || len(dec.Candidates) != 1 {
		t.Fatalf("single-vertex plan: order %v, %d candidates", tree.Order, len(dec.Candidates))
	}
}
