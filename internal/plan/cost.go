package plan

import (
	"fmt"
	"math"
	"sort"

	"ceci/internal/graph"
	"ceci/internal/order"
)

// GreedyName is the candidate name of the model-driven greedy order
// (every other candidate is named after its order.Heuristic).
const GreedyName = "greedy"

// Calibration ratio clamps: a single noisy depth cannot swing an
// estimate by more than this factor in either direction.
const (
	calibMin = 1.0 / 64
	calibMax = 64.0
)

// DepthEst is the model's expectation at one matching-order position.
type DepthEst struct {
	// Vertex is the query vertex visited at this position.
	Vertex int `json:"vertex"`
	// Calls is the expected number of CandidatesFor lookups (partial
	// embeddings reaching this depth).
	Calls float64 `json:"calls"`
	// ListLen is the expected summed input-list length per lookup — the
	// Lemma-2 merge cost of one intersection.
	ListLen float64 `json:"list_len"`
	// Out is the expected candidates emitted per lookup.
	Out float64 `json:"out"`
}

// Candidate is one scored candidate order.
type Candidate struct {
	Name     string           `json:"name"`
	Order    []graph.VertexID `json:"order"`
	Cost     float64          `json:"cost"`
	PerDepth []DepthEst       `json:"-"`
}

// Decision records one planning pass: the chosen order with its
// estimate and per-depth expectations, plus every candidate considered
// (deduplicated; identical orders keep the first name in the fixed
// evaluation sequence bfs, least-frequent, path-ranked, edge-ranked,
// greedy).
type Decision struct {
	Chosen     string           `json:"chosen"`
	Order      []graph.VertexID `json:"order"`
	Estimate   float64          `json:"estimate"`
	PerDepth   []DepthEst       `json:"per_depth,omitempty"`
	Candidates []Candidate      `json:"candidates"`
	// Calibrated marks a decision produced by drift re-planning, with
	// observed selectivities folded into the model.
	Calibrated bool `json:"calibrated,omitempty"`
	// Tree is the base tree reordered to the chosen order, ready for
	// index construction.
	Tree *order.QueryTree `json:"-"`
}

// EstimateOrder scores one tree-consistent order under the model,
// optionally adjusted by per-vertex calibration ratios (calib[u]
// multiplies u's expected output; nil or zero entries mean 1).
func (p *Planner) EstimateOrder(name string, ord []graph.VertexID, calib []float64) Candidate {
	n := len(ord)
	pos := make([]int, n)
	for i, u := range ord {
		pos[u] = i
	}
	per := make([]DepthEst, n)
	// Depth 0: root candidates come straight off the index (one work
	// unit per pivot), no intersection — charge the scan.
	partials := p.feat.candCount[ord[0]]
	cost := partials
	per[0] = DepthEst{Vertex: int(ord[0]), Calls: 1, Out: partials}
	sels := make([]edgeSel, 0, 8)
	stable := make([]edgeSel, 0, 8)
	for d := 1; d < n; d++ {
		u := ord[d]
		cu := p.feat.candCount[u]
		listLen, volLen := 0.0, 0.0
		minStable := math.Inf(1)
		sels, stable = sels[:0], stable[:0]
		for _, w := range p.base.Query.Neighbors(u) {
			if pos[w] >= d {
				continue
			}
			l := p.listLen(w, u)
			listLen += l
			if cu > 0 {
				sels = append(sels, edgeSel{w, l / cu})
			}
			if pos[w] == d-1 {
				volLen += l
			} else {
				if l < minStable {
					minStable = l
				}
				if cu > 0 {
					stable = append(stable, edgeSel{w, l / cu})
				}
			}
		}
		out := 0.0
		if cu > 0 {
			out = cu * p.selProduct(sels)
		}
		if c := calibAt(calib, u); c != 1 {
			out *= c
			if out > cu && cu > 0 {
				out = cu
			}
		}
		per[d] = DepthEst{Vertex: int(u), Calls: partials, ListLen: listLen, Out: out}

		// Merge-cost accounting mirrors two enumerator mechanisms the
		// raw Lemma-2 sum is blind to:
		//
		//   - The sibling-loop cache (internal/ceci/matches.go): lists
		//     keyed by parents placed before position d-1 are stable
		//     across the innermost sibling loop and merged once per
		//     sibling group (the partials of length d-1), while a list
		//     keyed by the parent at exactly d-1 is volatile and
		//     re-merged against the cached stable result on every
		//     lookup. This is what makes the model prefer orders that
		//     place a vertex's parents early: they enumerate out of the
		//     cache instead of re-intersecting per sibling.
		//   - The adaptive kernels (internal/setops): a merge's cost
		//     tracks its shorter input (galloping), not the summed
		//     lengths, so each merge is charged the minimum of its
		//     inputs.
		//
		// A single backward edge is a plain candidate-list walk — no
		// intersection at all — so it is charged only its output.
		groups := partials
		if d >= 2 {
			groups = per[d-1].Calls
		}
		switch {
		case len(sels) <= 1:
			cost += partials * out
		case volLen == 0:
			// All lists stable: one merge per sibling group, cached
			// result reused by every lookup in the group.
			cost += groups*minStable + partials*out
		default:
			stableOut := volLen
			if len(stable) > 0 {
				stableOut = cu * p.selProduct(stable)
				if len(stable) >= 2 {
					cost += groups * minStable
				}
			}
			cost += partials * (math.Min(stableOut, volLen) + out)
		}
		partials *= out
	}
	return Candidate{Name: name, Order: ord, Cost: cost, PerDepth: per}
}

// edgeSel is one backward edge's selectivity: the constraining placed
// neighbor and its list-length / candidate-count ratio.
type edgeSel struct {
	w graph.VertexID
	s float64
}

// selProduct combines per-edge selectivities into one thinning factor.
// A pure independence product over-thins vertices constrained by
// several backward edges, for two distinct reasons, each with a
// standard cardinality-estimator correction:
//
//   - Generic correlation: neighbor constraints are never independent,
//     so each extra edge removes fewer candidates than the last.
//     Correction: exponential backoff — factors capped at 1 (an edge
//     cannot grow the candidate set), sorted most-selective-first, the
//     k-th damped to s^(1/2^k).
//   - Transitive correlation: when two constraining neighbors are
//     themselves adjacent in the query, their candidate lists are the
//     neighborhoods of adjacent data vertices — on clustered graphs
//     those overlap so strongly that the weaker constraint removes
//     almost nothing beyond the stronger one. Correction: treat them
//     as fully correlated — a factor whose neighbor is query-adjacent
//     to an already-counted neighbor contributes nothing. (This is
//     what makes the model stop underpricing orders that defer the
//     closing vertex of a triangle.)
func (p *Planner) selProduct(sels []edgeSel) float64 {
	for i := range sels {
		if sels[i].s > 1 {
			sels[i].s = 1
		}
	}
	sort.Slice(sels, func(i, j int) bool { return sels[i].s < sels[j].s })
	prod, exp := 1.0, 1.0
	for i, e := range sels {
		correlated := false
		for _, prev := range sels[:i] {
			if p.base.Query.HasEdge(e.w, prev.w) {
				correlated = true
				break
			}
		}
		if correlated {
			continue
		}
		prod *= math.Pow(e.s, exp)
		exp /= 2
	}
	return prod
}

func calibAt(calib []float64, u graph.VertexID) float64 {
	if calib == nil || int(u) >= len(calib) || calib[u] <= 0 {
		return 1
	}
	return calib[u]
}

// greedyOrder builds a tree-consistent order by repeatedly selecting,
// among vertices whose tree parent is placed, the one with the smallest
// expected output under the current prefix (ties: smaller merge cost,
// then smaller vertex ID) — growth-factor-first, the classic min-cost
// greedy.
func (p *Planner) greedyOrder(calib []float64) []graph.VertexID {
	t := p.base
	n := t.NumVertices()
	placed := make([]bool, n)
	ord := make([]graph.VertexID, 0, n)
	ord = append(ord, t.Root)
	placed[t.Root] = true
	available := append([]graph.VertexID(nil), t.Children[t.Root]...)
	sels := make([]edgeSel, 0, 8)
	scoreOf := func(u graph.VertexID) (out, listLen float64) {
		cu := p.feat.candCount[u]
		sels = sels[:0]
		for _, w := range t.Query.Neighbors(u) {
			if !placed[w] {
				continue
			}
			l := p.listLen(w, u)
			listLen += l
			if cu > 0 {
				sels = append(sels, edgeSel{w, l / cu})
			}
		}
		if cu > 0 {
			out = cu * p.selProduct(sels)
		}
		out *= calibAt(calib, u)
		return out, listLen
	}
	for len(available) > 0 {
		bi := 0
		bo, bl := scoreOf(available[0])
		for i := 1; i < len(available); i++ {
			o, l := scoreOf(available[i])
			if o < bo || (o == bo && (l < bl || (l == bl && available[i] < available[bi]))) {
				bi, bo, bl = i, o, l
			}
		}
		u := available[bi]
		available = append(available[:bi], available[bi+1:]...)
		placed[u] = true
		ord = append(ord, u)
		available = append(available, t.Children[u]...)
	}
	return ord
}

// Decide scores every candidate order — the four static heuristics plus
// the greedy min-cost order — and returns the cheapest. Ties break to
// the earliest candidate in the evaluation sequence, so the default
// (BFS) wins when the model cannot separate orders. calib carries
// per-vertex observed/predicted output ratios from served traffic (nil
// for a first plan).
func (p *Planner) Decide(calib []float64) (*Decision, error) {
	type named struct {
		name string
		ord  []graph.VertexID
	}
	var orders []named
	for _, h := range order.Heuristics() {
		ord, err := p.base.DeriveOrder(h)
		if err != nil {
			return nil, err
		}
		orders = append(orders, named{h.String(), ord})
	}
	orders = append(orders, named{GreedyName, p.greedyOrder(calib)})

	dec := &Decision{Calibrated: calib != nil}
	best := -1
	for _, no := range orders {
		if dup(dec.Candidates, no.ord) {
			continue
		}
		c := p.EstimateOrder(no.name, no.ord, calib)
		dec.Candidates = append(dec.Candidates, c)
		if best < 0 || c.Cost < dec.Candidates[best].Cost {
			best = len(dec.Candidates) - 1
		}
	}
	win := dec.Candidates[best]
	dec.Chosen = win.Name
	dec.Order = win.Order
	dec.Estimate = win.Cost
	dec.PerDepth = win.PerDepth

	tree, err := p.base.Reorder(win.Order)
	if err != nil {
		return nil, fmt.Errorf("plan: chosen order invalid: %w", err)
	}
	dec.Tree = tree
	return dec, nil
}

func dup(cands []Candidate, ord []graph.VertexID) bool {
outer:
	for _, c := range cands {
		for i := range ord {
			if c.Order[i] != ord[i] {
				continue outer
			}
		}
		return true
	}
	return false
}

// Calibration folds observed per-depth funnel counts for the decision's
// chosen order into per-vertex output ratios: observed output-per-call
// divided by the model's prediction, clamped to [1/64, 64]. lookups and
// emitted are indexed by matching-order depth; depths never reached (or
// with a zero prediction) keep ratio 1. Returns nil when no depth has
// observations.
func (d *Decision) Calibration(lookups, emitted []int64) []float64 {
	n := len(d.Order)
	if len(lookups) < n || len(emitted) < n {
		return nil
	}
	var calib []float64
	for depth := 1; depth < n; depth++ {
		if lookups[depth] <= 0 {
			continue
		}
		pred := d.PerDepth[depth].Out
		if pred <= 0 {
			// The model predicted a dead depth that is being reached:
			// treat as maximal underestimate.
			pred = calibMin
		}
		obs := float64(emitted[depth]) / float64(lookups[depth])
		r := obs / pred
		if r < calibMin {
			r = calibMin
		}
		if r > calibMax {
			r = calibMax
		}
		if calib == nil {
			calib = make([]float64, n)
			for i := range calib {
				calib[i] = 1
			}
		}
		calib[d.Order[depth]] = r
	}
	return calib
}

// Choose is the one-shot entry point: preprocess, score, decide. The
// returned tree carries the winning order; the decision records every
// estimate for EXPLAIN output.
func Choose(data, query *graph.Graph, opt Options) (*order.QueryTree, *Decision, error) {
	p, err := New(data, query, opt)
	if err != nil {
		return nil, nil, err
	}
	dec, err := p.Decide(nil)
	if err != nil {
		return nil, nil, err
	}
	return dec.Tree, dec, nil
}
