// Package plan implements cost-based matching-order selection: every
// static heuristic's order (internal/order) plus a greedy min-cost
// order are scored by a cardinality model built from cheap
// pre-enumeration statistics, and the cheapest is installed.
//
// The model follows the STwig line of work (cost-driven order selection
// on billion-node graphs) adapted to CECI's intersection enumerator:
// the cost of visiting query vertex u at depth d is the Lemma-2 merge
// cost — the summed lengths of the candidate lists intersected — times
// the expected number of partial embeddings reaching depth d. Expected
// list lengths come from three statistics computed in one pass over
// each query vertex's filtered candidates:
//
//   - cand(u): candidates surviving the label/degree/NLC filters
//     (already computed by order.Preprocess for root selection);
//   - freq(u): data vertices carrying u's primary label;
//   - avgNbr(w→u): the size-biased mean (Σc²/Σc), over candidates x of
//     w, of x's data neighbors carrying u's primary label — size-biased
//     because a partial embedding reaches x through an edge, and x sits
//     on one such edge per relevant neighbor (the friendship paradox).
//
// For a query edge (w, u) with w already matched, the expected length
// of the candidate list keyed by w's assignment is
//
//	L(w→u) = avgNbr(w→u) · cand(u)/freq(u)
//
// (the neighbor count thinned by the fraction of same-labeled vertices
// that survive full filtering). Per-edge selectivities L_i/cand(u) are
// combined with exponential backoff and full correlation for
// query-adjacent constraining neighbors (cost.go: selProduct), expected
// partial embeddings multiply depth over depth, and merge work is
// charged the way the enumerator spends it: stable lists once per
// sibling group, volatile lists per lookup, each merge at the minimum
// of its input lengths (the adaptive kernels gallop). See DESIGN.md §15
// for the full derivation.
//
// For served traffic the planner is retained alongside the cached index
// (internal/service): observed per-depth selectivities from the
// enumeration funnel are folded into per-vertex calibration ratios, and
// when the calibrated cost of the running order drifts ≥k× above its
// estimate the query class is re-planned — l2Match's Jump-Redo applied
// at plan-cache granularity.
package plan

import (
	"ceci/internal/graph"
	"ceci/internal/order"
)

// Options configures planning.
type Options struct {
	// ForcedRoot, when >= 0, overrides cost-based root selection.
	ForcedRoot int
}

// DefaultOptions returns the defaults (cost-based root).
func DefaultOptions() Options { return Options{ForcedRoot: -1} }

// Planner holds one query's preprocessing result and the statistics the
// cost model needs. It is retained by the service's plan cache so drift
// re-planning can re-score orders without touching the data graph.
type Planner struct {
	base *order.QueryTree
	feat features
}

// features are the cheap pre-enumeration statistics driving the model.
type features struct {
	candCount []float64   // per query vertex: filtered candidate count
	labelFreq []float64   // per query vertex: |vertices with primary label|
	avgNbr    [][]float64 // avgNbr[w][j]: mean #neighbors of w's candidates labeled like query.Neighbors(w)[j]
}

// New preprocesses query against data (BFS base order; the tree shape
// and candidate counts depend only on the root) and computes the model
// statistics: one pass over each query vertex's filtered candidates,
// the same order of work root selection already does.
func New(data, query *graph.Graph, opt Options) (*Planner, error) {
	base, err := order.Preprocess(data, query, order.Options{
		ForcedRoot: opt.ForcedRoot,
		Heuristic:  order.BFSOrder,
	})
	if err != nil {
		return nil, err
	}
	n := query.NumVertices()
	f := features{
		candCount: make([]float64, n),
		labelFreq: make([]float64, n),
		avgNbr:    make([][]float64, n),
	}
	for u := 0; u < n; u++ {
		uu := graph.VertexID(u)
		f.candCount[u] = float64(base.CandCount[u])
		f.labelFreq[u] = float64(data.LabelFrequency(query.Labels(uu)[0]))
		nbrs := query.Neighbors(uu)
		row := make([]float64, len(nbrs))
		rowSq := make([]float64, len(nbrs))
		order.ForEachCandidate(data, query, uu, func(v graph.VertexID) {
			sig := data.NLC(v)
			for j, w := range nbrs {
				c := float64(sig.Count(query.Labels(w)[0]))
				row[j] += c
				rowSq[j] += c * c
			}
		})
		// Size-biased mean Σc²/Σc, not the uniform mean Σc/n: a partial
		// embedding reaches a candidate of u through an edge, and a
		// candidate with c relevant neighbors sits on c such edges — so
		// the conditional expectation of the next list length is
		// edge-weighted (the friendship paradox). On the heavy-tailed
		// degree distributions of the benchmark graphs the uniform mean
		// underestimates fan-out by an order of magnitude.
		for j := range row {
			if row[j] > 0 {
				row[j] = rowSq[j] / row[j]
			}
		}
		f.avgNbr[u] = row
	}
	return &Planner{base: base, feat: f}, nil
}

// Base returns the underlying BFS query tree (root, tree structure,
// candidate counts) shared by every candidate order.
func (p *Planner) Base() *order.QueryTree { return p.base }

// listLen returns the expected length of the candidate list for query
// vertex u keyed by an assignment of its already-matched neighbor w:
// the average relevant-label neighbor count thinned by the fraction of
// same-labeled vertices surviving full filtering, clamped to cand(u).
func (p *Planner) listLen(w, u graph.VertexID) float64 {
	var avg float64
	for j, x := range p.base.Query.Neighbors(w) {
		if x == u {
			avg = p.feat.avgNbr[w][j]
			break
		}
	}
	frac := 0.0
	if p.feat.labelFreq[u] > 0 {
		frac = p.feat.candCount[u] / p.feat.labelFreq[u]
	}
	l := avg * frac
	if cu := p.feat.candCount[u]; l > cu {
		l = cu
	}
	return l
}
