package verify

import (
	"sort"
	"strconv"
	"strings"

	"ceci/internal/graph"
)

// Canonical query keys: the service layer caches built indexes per query
// graph, so two textually different but isomorphic queries should share
// one cache slot. CanonicalGraph produces (key, perm) such that
//
//   - key is identical for isomorphic graphs (when the "c:" path is
//     taken), and differs for non-isomorphic ones always — the key
//     embeds the full relabeled adjacency, so equal keys certify an
//     exact isomorphism, never a hash collision;
//   - perm maps original vertex ids to canonical positions
//     (perm[orig] = canon), letting a cache hit translate embeddings of
//     the stored query into embeddings of the incoming one.
//
// The construction is Weisfeiler-Leman color refinement followed by a
// bounded permutation search over the surviving color classes. Query
// graphs are tiny (the paper's workloads top out around a dozen
// vertices), so the search cap is generous yet still O(10^4) encodings
// in the worst accepted case. Graphs whose ambiguity exceeds the cap
// fall back to a deterministic-but-not-invariant "x:" key: correctness
// is preserved (equal keys still certify isomorphism via the embedded
// adjacency); only cache sharing between permuted variants is lost.

// maxCanonPerms caps the number of within-class permutations tried
// during canonical-form search (7! · 2! · 2! = 20160 fits comfortably).
const maxCanonPerms = 20160

// CanonicalGraph returns a canonical cache key for g and the vertex
// relabeling (perm[orig] = canonical position) under which the key was
// produced. Keys beginning "c:" are full canonical forms — permutation
// invariant. Keys beginning "x:" are deterministic fallbacks for graphs
// too symmetric to canonicalize within budget.
func CanonicalGraph(g *graph.Graph) (string, []int) {
	n := g.NumVertices()
	if n == 0 {
		return "c:n=0;", nil
	}

	colors := refineColors(g)

	// Group vertices into color classes (colors are already dense and
	// assigned in signature-sorted order, hence permutation invariant).
	numColors := 0
	for _, c := range colors {
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	classes := make([][]int, numColors)
	for v, c := range colors {
		classes[c] = append(classes[c], v)
	}

	// Count the permutations a full search would cost.
	total := 1
	for _, cl := range classes {
		for k := 2; k <= len(cl); k++ {
			total *= k
			if total > maxCanonPerms {
				break
			}
		}
		if total > maxCanonPerms {
			break
		}
	}

	if total > maxCanonPerms {
		// Fallback: order by (color, original id). Deterministic and
		// distinguishing, but a permuted twin may land on another key.
		perm := permFromClasses(classes, n)
		return "x:" + encodeUnder(g, perm), perm
	}

	// Exact search: for each combination of within-class orderings,
	// encode the relabeled graph and keep the lexicographically smallest
	// string. The minimum over all class-respecting relabelings is a
	// canonical form (WL colors pin each vertex to its class; the search
	// resolves the remaining symmetry).
	classPerms := make([][][]int, len(classes))
	for i, cl := range classes {
		classPerms[i] = permutations(len(cl))
	}
	odo := make([]int, len(classes))
	perm := make([]int, n)
	bestPerm := make([]int, n)
	best := ""
	for {
		pos := 0
		for ci, cl := range classes {
			p := classPerms[ci][odo[ci]]
			for j, v := range cl {
				perm[v] = pos + p[j]
			}
			pos += len(cl)
		}
		enc := encodeUnder(g, perm)
		if best == "" || enc < best {
			best = enc
			copy(bestPerm, perm)
		}
		// Advance the odometer.
		i := 0
		for ; i < len(odo); i++ {
			odo[i]++
			if odo[i] < len(classPerms[i]) {
				break
			}
			odo[i] = 0
		}
		if i == len(odo) {
			break
		}
	}
	return "c:" + best, bestPerm
}

// refineColors runs WL color refinement to a stable partition and
// returns dense, permutation-invariant color ids (colors are numbered by
// sorted signature string, and signatures are built only from invariant
// data: label sets and neighbor-color multisets).
func refineColors(g *graph.Graph) []int {
	n := g.NumVertices()
	sigs := make([]string, n)
	for v := 0; v < n; v++ {
		sigs[v] = labelSig(g, graph.VertexID(v))
	}
	colors, numColors := densify(sigs)
	for round := 0; round < n; round++ {
		var nb []int
		for v := 0; v < n; v++ {
			nb = nb[:0]
			for _, w := range g.Neighbors(graph.VertexID(v)) {
				nb = append(nb, colors[w])
			}
			sort.Ints(nb)
			var b strings.Builder
			b.WriteString(strconv.Itoa(colors[v]))
			b.WriteByte('|')
			for i, c := range nb {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(c))
			}
			sigs[v] = b.String()
		}
		next, nextNum := densify(sigs)
		if nextNum == numColors {
			return next // refinement stalled: partition is stable
		}
		colors, numColors = next, nextNum
	}
	return colors
}

// densify maps signature strings to dense ids ordered by sorted
// signature, so the ids themselves are permutation invariant.
func densify(sigs []string) ([]int, int) {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	w := 0
	for i, s := range uniq {
		if i == 0 || s != uniq[i-1] {
			uniq[w] = s
			w++
		}
	}
	uniq = uniq[:w]
	id := make(map[string]int, w)
	for i, s := range uniq {
		id[s] = i
	}
	out := make([]int, len(sigs))
	for v, s := range sigs {
		out[v] = id[s]
	}
	return out, w
}

// labelSig encodes v's label set, sorted, as an invariant string.
func labelSig(g *graph.Graph, v graph.VertexID) string {
	ls := g.Labels(v)
	sorted := append([]graph.Label(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	b.WriteByte('L')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(l), 10))
	}
	return b.String()
}

// permFromClasses orders vertices by (class, original id).
func permFromClasses(classes [][]int, n int) []int {
	perm := make([]int, n)
	pos := 0
	for _, cl := range classes {
		for _, v := range cl {
			perm[v] = pos
			pos++
		}
	}
	return perm
}

// encodeUnder serializes g relabeled by perm (perm[orig] = canon):
// vertex count, per-canonical-vertex label sets, then the sorted edge
// list in canonical ids. Equal encodings imply isomorphic graphs with
// the witnessing mapping recoverable from the two perms.
func encodeUnder(g *graph.Graph, perm []int) string {
	n := g.NumVertices()
	inv := make([]int, n)
	for v, p := range perm {
		inv[p] = v
	}
	var b strings.Builder
	b.WriteString("n=")
	b.WriteString(strconv.Itoa(n))
	b.WriteByte(';')
	for i := 0; i < n; i++ {
		b.WriteString(labelSig(g, graph.VertexID(inv[i])))
		b.WriteByte(';')
	}
	edges := make([][2]int, 0, g.NumEdges())
	g.Edges(func(u, v graph.VertexID) bool {
		a, c := perm[u], perm[v]
		if a > c {
			a, c = c, a
		}
		edges = append(edges, [2]int{a, c})
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		b.WriteString(strconv.Itoa(e[0]))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(e[1]))
		b.WriteByte(';')
	}
	return b.String()
}

// permutations returns all permutations of [0, k) in a deterministic
// order. k is bounded by maxCanonPerms upstream, so k <= 7.
func permutations(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), base...))
			return
		}
		for j := i; j < k; j++ {
			base[i], base[j] = base[j], base[i]
			rec(i + 1)
			base[i], base[j] = base[j], base[i]
		}
	}
	rec(0)
	return out
}
