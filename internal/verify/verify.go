// Package verify is the differential-correctness subsystem: it
// cross-checks every matcher in the repository — CECI itself, the five
// baselines under internal/baseline, and the brute-force oracle in
// internal/reference — on randomized labeled graph/query pairs, asserting
// that all engines produce the identical embedding *set* (canonicalized
// with automorphism-aware dedup, not just equal counts), and that CECI's
// answers satisfy a battery of metamorphic invariants (permutation,
// label-renaming, edge-deletion monotonicity, Options stability, index
// round-trip).
//
// The oracle hierarchy is: reference (obviously correct, exhaustive) >
// baselines (five independent implementations sharing only the graph
// substrate) > CECI (the system under test). Agreement across all seven
// is the repository's primary correctness signal, following the practice
// of the large-scale matching literature (Sun et al. VLDB'12, GraphMini).
//
// Entry points: CheckSeed/CheckPair (exact set equality across engines),
// CheckInvariants (metamorphic properties), and MinimizeFailure (shrink a
// failing pair to a minimal counterexample). The same machinery is
// exposed as table-driven tests, native fuzz targets
// (FuzzMatchDifferential, FuzzIndexRoundTrip), and `cecirun -verify`.
package verify

import (
	"fmt"
	"strings"
	"sync"

	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
)

// Options tunes a differential check.
type Options struct {
	// Workers is the parallelism handed to every engine (<= 0: each
	// engine's own default, usually GOMAXPROCS).
	Workers int
	// MaxEmbeddings aborts pathological pairs whose reference embedding
	// set explodes (0 = no cap). Capped runs are reported as skipped,
	// never as agreement.
	MaxEmbeddings int
}

// Mismatch records one engine's disagreement with the reference oracle.
type Mismatch struct {
	// Engine is the disagreeing engine's name.
	Engine string
	// Err is set when the engine failed outright instead of answering.
	Err error
	// Missing are canonical embeddings the oracle found and the engine
	// did not; Extra is the reverse.
	Missing, Extra []string
}

// Report is the outcome of one differential check.
type Report struct {
	// Seed is the generating seed (0 when CheckPair was called directly).
	Seed int64
	// Data and Query are the graphs that were checked.
	Data, Query *graph.Graph
	// Embeddings is the oracle's canonical embedding count.
	Embeddings int
	// Skipped marks a pair abandoned because MaxEmbeddings was exceeded.
	Skipped bool
	// Mismatches lists every engine that disagreed with the oracle.
	Mismatches []Mismatch
}

// OK reports whether every engine agreed with the oracle.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// String renders a human-readable report (multi-line on failure).
func (r *Report) String() string {
	if r.Skipped {
		return fmt.Sprintf("seed %d: skipped (embedding cap exceeded)", r.Seed)
	}
	if r.OK() {
		return fmt.Sprintf("seed %d: %d embeddings, all engines agree", r.Seed, r.Embeddings)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: data %v, query %v, oracle found %d embeddings\n",
		r.Seed, r.Data, r.Query, r.Embeddings)
	for _, m := range r.Mismatches {
		if m.Err != nil {
			fmt.Fprintf(&b, "  %s: error: %v\n", m.Engine, m.Err)
			continue
		}
		fmt.Fprintf(&b, "  %s: %d missing, %d extra\n", m.Engine, len(m.Missing), len(m.Extra))
		for i, e := range m.Missing {
			if i == 4 {
				fmt.Fprintf(&b, "    missing ... (%d more)\n", len(m.Missing)-i)
				break
			}
			fmt.Fprintf(&b, "    missing %s\n", e)
		}
		for i, e := range m.Extra {
			if i == 4 {
				fmt.Fprintf(&b, "    extra   ... (%d more)\n", len(m.Extra)-i)
				break
			}
			fmt.Fprintf(&b, "    extra   %s\n", e)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// CheckSeed generates the pair for seed and differentially checks it.
func CheckSeed(seed int64, opts Options) *Report {
	data, query := gen.RandomPair(seed)
	r := CheckPair(data, query, opts)
	r.Seed = seed
	return r
}

// CheckPair runs every engine on (data, query) and compares canonical
// embedding sets against the reference oracle.
func CheckPair(data, query *graph.Graph, opts Options) *Report {
	r := &Report{Data: data, Query: query}
	cons := auto.Compute(query)

	oracle, err := collect(Engines()[0], data, query, opts.Workers)
	if err != nil {
		// The oracle itself cannot fail; treat as universal mismatch.
		r.Mismatches = append(r.Mismatches, Mismatch{Engine: "reference", Err: err})
		return r
	}
	if opts.MaxEmbeddings > 0 && len(oracle) > opts.MaxEmbeddings {
		r.Skipped = true
		return r
	}
	want := CanonicalSet(oracle, cons)
	r.Embeddings = len(want)

	for _, e := range Engines()[1:] {
		embs, err := collect(e, data, query, opts.Workers)
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Engine: e.Name, Err: err})
			continue
		}
		got := CanonicalSet(embs, cons)
		missing, extra := diffSets(want, got)
		if len(missing) > 0 || len(extra) > 0 {
			r.Mismatches = append(r.Mismatches, Mismatch{
				Engine: e.Name, Missing: missing, Extra: extra,
			})
		}
	}
	return r
}

// collect gathers an engine's embeddings; safe under concurrent callbacks.
func collect(e Engine, data, query *graph.Graph, workers int) ([][]graph.VertexID, error) {
	var mu sync.Mutex
	var out [][]graph.VertexID
	err := e.ForEach(data, query, workers, func(emb []graph.VertexID) bool {
		cp := make([]graph.VertexID, len(emb))
		copy(cp, emb)
		mu.Lock()
		out = append(out, cp)
		mu.Unlock()
		return true
	})
	return out, err
}

// diffSets compares two sorted string slices, returning elements only in
// want (missing) and only in got (extra).
func diffSets(want, got []string) (missing, extra []string) {
	i, j := 0, 0
	for i < len(want) || j < len(got) {
		switch {
		case i == len(want):
			extra = append(extra, got[j])
			j++
		case j == len(got):
			missing = append(missing, want[i])
			i++
		case want[i] == got[j]:
			i++
			j++
		case want[i] < got[j]:
			missing = append(missing, want[i])
			i++
		default:
			extra = append(extra, got[j])
			j++
		}
	}
	return missing, extra
}

// MinimizeFailure shrinks a pair on which CheckPair fails to a minimal
// counterexample that still fails the same way (some engine disagreeing
// with the oracle). Engine errors count as failures only if the original
// report contained an engine error too; otherwise shrinking toward
// degenerate inputs that merely error out would lose the actual bug.
func MinimizeFailure(data, query *graph.Graph, opts Options) (*graph.Graph, *graph.Graph, *Report) {
	orig := CheckPair(data, query, opts)
	if orig.OK() {
		return data, query, orig
	}
	allowErrors := false
	for _, m := range orig.Mismatches {
		if m.Err != nil {
			allowErrors = true
		}
	}
	failing := func(d, q *graph.Graph) bool {
		rep := CheckPair(d, q, opts)
		if rep.OK() || rep.Skipped {
			return false
		}
		if !allowErrors {
			for _, m := range rep.Mismatches {
				if m.Err != nil {
					return false
				}
			}
		}
		return true
	}
	md, mq := gen.Minimize(data, query, failing)
	return md, mq, CheckPair(md, mq, opts)
}
