package verify

import (
	ceci "ceci"
	"ceci/internal/auto"
	"ceci/internal/baseline"
	"ceci/internal/baseline/bare"
	"ceci/internal/baseline/cfl"
	"ceci/internal/baseline/dualsim"
	"ceci/internal/baseline/psgl"
	"ceci/internal/baseline/turboiso"
	"ceci/internal/graph"
	"ceci/internal/reference"
)

// Engine is one matcher under differential test. All engines enumerate
// with symmetry breaking active (one representative per automorphism
// orbit); the canonicalization layer makes comparison robust to which
// representative each engine happens to emit.
type Engine struct {
	// Name identifies the engine in reports.
	Name string
	// ForEach enumerates embeddings of query in data. The slice is
	// indexed by query vertex, may be reused, and fn may be called
	// concurrently.
	ForEach func(data, query *graph.Graph, workers int, fn func(emb []graph.VertexID) bool) error
}

// Engines returns the seven matchers in oracle order: the reference
// enumerator first (the trust anchor), then CECI, then the baselines.
func Engines() []Engine {
	return []Engine{
		{Name: "reference", ForEach: referenceForEach},
		{Name: "ceci", ForEach: ceciForEach},
		{Name: "bare", ForEach: baselineForEach(bare.ForEach)},
		{Name: "cfl", ForEach: baselineForEach(cfl.ForEach)},
		{Name: "dualsim", ForEach: baselineForEach(dualsim.ForEach)},
		{Name: "psgl", ForEach: baselineForEach(psgl.ForEach)},
		{Name: "turboiso", ForEach: baselineForEach(turboiso.ForEach)},
	}
}

func referenceForEach(data, query *graph.Graph, workers int, fn func([]graph.VertexID) bool) error {
	reference.ForEach(data, query, reference.Options{Constraints: auto.Compute(query)}, fn)
	return nil
}

func ceciForEach(data, query *graph.Graph, workers int, fn func([]graph.VertexID) bool) error {
	m, err := ceci.Match(data, query, &ceci.Options{Workers: workers})
	if err != nil {
		return err
	}
	m.ForEach(fn)
	return nil
}

func baselineForEach(f baseline.ForEachFunc) func(data, query *graph.Graph, workers int, fn func([]graph.VertexID) bool) error {
	return func(data, query *graph.Graph, workers int, fn func([]graph.VertexID) bool) error {
		return f(data, query, baseline.Options{Workers: workers}, fn)
	}
}
