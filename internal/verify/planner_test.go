package verify_test

import (
	"sync"
	"testing"

	ceci "ceci"
	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/verify"
)

// TestDifferentialPlannerOrders is the planner's answer-preservation
// sweep: the cost-based planner may pick any tree-consistent matching
// order, but the embedding *set* must be bit-identical to the default
// static order on every pair. 2000 seeded pairs (reduced under -short),
// planner-on vs planner-off, canonicalized exactly like the engine
// differential so symmetry-breaking representatives don't alias as
// diffs. A failing seed replays with:
//
//	go run ./cmd/cecirun -verify -seed <seed>
func TestDifferentialPlannerOrders(t *testing.T) {
	seeds := int64(2000)
	if testing.Short() {
		seeds = 250
	}
	const maxEmbeddings = 200000
	checked, skipped := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		data, query := gen.RandomPair(seed)
		cons := auto.Compute(query)

		base, err := ceciEmbeddings(data, query, &ceci.Options{Workers: 2})
		if err != nil {
			t.Fatalf("seed %d: planner-off match: %v", seed, err)
		}
		if len(base) > maxEmbeddings {
			skipped++
			continue
		}
		onOpts := &ceci.Options{Workers: 2, Planner: true}
		got, err := ceciEmbeddings(data, query, onOpts)
		if err != nil {
			t.Fatalf("seed %d: planner-on match: %v", seed, err)
		}
		checked++

		want := verify.CanonicalSet(base, cons)
		have := verify.CanonicalSet(got, cons)
		if len(want) != len(have) {
			t.Fatalf("seed %d: planner-on found %d canonical embeddings, planner-off %d\nreproduce: go run ./cmd/cecirun -verify -seed %d",
				seed, len(have), len(want), seed)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("seed %d: embedding sets diverge at %d: planner-off %q vs planner-on %q\nreproduce: go run ./cmd/cecirun -verify -seed %d",
					seed, i, want[i], have[i], seed)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked; generator envelope too explosive")
	}
	t.Logf("%d pairs checked planner-on vs planner-off (%d skipped as too large)", checked, skipped)
}

// ceciEmbeddings collects CECI's embeddings under opts; safe under
// concurrent callbacks.
func ceciEmbeddings(data, query *graph.Graph, opts *ceci.Options) ([][]graph.VertexID, error) {
	m, err := ceci.Match(data, query, opts)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var out [][]graph.VertexID
	m.ForEach(func(emb []graph.VertexID) bool {
		cp := make([]graph.VertexID, len(emb))
		copy(cp, emb)
		mu.Lock()
		out = append(out, cp)
		mu.Unlock()
		return true
	})
	return out, nil
}
