package verify

import (
	"bytes"
	"fmt"
	"sync"

	ceci "ceci"
	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
)

// Metamorphic invariants: properties CECI's answers must satisfy under
// input and configuration transformations, checkable without any oracle.
//
//   - permutation:    relabeling data vertices leaves the count unchanged
//   - label-renaming: a label bijection applied to both graphs leaves the
//     embedding set unchanged vertex-for-vertex
//   - edge-deletion:  removing a data edge never creates embeddings
//   - options:        worker count, ST/CGD/FGD balancing, adjacency-probe
//     verification, incremental vs. batch enumeration, and a serialized
//     index round-trip all produce the identical embedding set
//   - automorphisms:  KeepAutomorphisms multiplies the count by exactly
//     the query's orbit size

// Violation records one broken invariant.
type Violation struct {
	// Invariant names the broken property.
	Invariant string
	// Detail explains the disagreement.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// CheckInvariants runs every metamorphic invariant on (data, query),
// deriving transform randomness from seed. It returns all violations
// found (empty means the invariants hold).
func CheckInvariants(data, query *graph.Graph, seed int64, opts Options) []Violation {
	var out []Violation
	rng := gen.NewRNG(seed)
	cons := auto.Compute(query)

	base, err := ceciSet(data, query, &ceci.Options{Workers: opts.Workers}, cons)
	if err != nil {
		return []Violation{{Invariant: "baseline", Detail: err.Error()}}
	}
	baseCount := int64(len(base))

	// Invariance under data-vertex permutation.
	permuted, _ := gen.PermuteVertices(data, rng)
	if got, err := ceciCount(permuted, query, &ceci.Options{Workers: opts.Workers}); err != nil {
		out = append(out, Violation{"permutation", err.Error()})
	} else if got != baseCount {
		out = append(out, Violation{"permutation",
			fmt.Sprintf("count %d after data-vertex permutation, want %d", got, baseCount)})
	}

	// Invariance under label renaming (same bijection on both graphs).
	alpha := data.NumLabels()
	if qa := query.NumLabels(); qa > alpha {
		alpha = qa
	}
	ren := gen.RandomLabelBijection(alpha, rng)
	if got, err := ceciSet(gen.RenameLabels(data, ren), gen.RenameLabels(query, ren),
		&ceci.Options{Workers: opts.Workers}, cons); err != nil {
		out = append(out, Violation{"label-renaming", err.Error()})
	} else if !equalSets(base, got) {
		out = append(out, Violation{"label-renaming",
			fmt.Sprintf("embedding set changed under label bijection (%d vs %d)", len(got), len(base))})
	}

	// Monotonicity under data-edge deletion.
	if data.NumEdges() > 0 {
		smaller := gen.DeleteEdge(data, rng.Intn(data.NumEdges()))
		if got, err := ceciCount(smaller, query, &ceci.Options{Workers: opts.Workers}); err != nil {
			out = append(out, Violation{"edge-deletion", err.Error()})
		} else if got > baseCount {
			out = append(out, Violation{"edge-deletion",
				fmt.Sprintf("count grew from %d to %d after deleting a data edge", baseCount, got)})
		}
	}

	// Stability across Options variations — identical embedding sets.
	variants := []struct {
		name string
		opts *ceci.Options
	}{
		{"workers=1", &ceci.Options{Workers: 1}},
		{"workers=4", &ceci.Options{Workers: 4}},
		{"strategy=static", &ceci.Options{Workers: opts.Workers, Strategy: ceci.StrategyStatic}},
		{"strategy=coarse", &ceci.Options{Workers: opts.Workers, Strategy: ceci.StrategyCoarse}},
		{"edge-verification", &ceci.Options{Workers: opts.Workers, EdgeVerification: true}},
	}
	for _, v := range variants {
		got, err := ceciSet(data, query, v.opts, cons)
		if err != nil {
			out = append(out, Violation{"options/" + v.name, err.Error()})
			continue
		}
		if !equalSets(base, got) {
			out = append(out, Violation{"options/" + v.name,
				fmt.Sprintf("embedding set differs from default run (%d vs %d)", len(got), len(base))})
		}
	}

	// Incremental (cluster-by-cluster lazy build) vs. batch.
	if got, err := incrementalSet(data, query, &ceci.Options{Workers: opts.Workers}, cons); err != nil {
		out = append(out, Violation{"incremental", err.Error()})
	} else if !equalSets(base, got) {
		out = append(out, Violation{"incremental",
			fmt.Sprintf("incremental set differs from batch (%d vs %d)", len(got), len(base))})
	}

	// Serialized-index round-trip via index_io.go.
	if got, err := roundTripSet(data, query, &ceci.Options{Workers: opts.Workers}, cons); err != nil {
		out = append(out, Violation{"index-roundtrip", err.Error()})
	} else if !equalSets(base, got) {
		out = append(out, Violation{"index-roundtrip",
			fmt.Sprintf("reloaded index set differs (%d vs %d)", len(got), len(base))})
	}

	// Automorphism accounting: listing all images multiplies the count by
	// the orbit size of the query's equivalence classes.
	if got, err := ceciCount(data, query, &ceci.Options{Workers: opts.Workers, KeepAutomorphisms: true}); err != nil {
		out = append(out, Violation{"automorphisms", err.Error()})
	} else if want := baseCount * int64(cons.OrbitSize()); got != want {
		out = append(out, Violation{"automorphisms",
			fmt.Sprintf("KeepAutomorphisms count %d, want %d (= %d × orbit %d)",
				got, want, baseCount, cons.OrbitSize())})
	}

	return out
}

func ceciCount(data, query *graph.Graph, o *ceci.Options) (int64, error) {
	return ceci.Count(data, query, o)
}

func ceciSet(data, query *graph.Graph, o *ceci.Options, cons *auto.Constraints) ([]string, error) {
	m, err := ceci.Match(data, query, o)
	if err != nil {
		return nil, err
	}
	return collectSet(cons, func(fn func([]graph.VertexID) bool) { m.ForEach(fn) }), nil
}

func incrementalSet(data, query *graph.Graph, o *ceci.Options, cons *auto.Constraints) ([]string, error) {
	var set []string
	var err error
	set = collectSet(cons, func(fn func([]graph.VertexID) bool) {
		err = ceci.ForEachIncremental(data, query, o, fn)
	})
	return set, err
}

func roundTripSet(data, query *graph.Graph, o *ceci.Options, cons *auto.Constraints) ([]string, error) {
	m, err := ceci.Match(data, query, o)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.SaveIndex(&buf); err != nil {
		return nil, err
	}
	m2, err := ceci.MatchWithIndex(data, query, &buf, o)
	if err != nil {
		return nil, err
	}
	return collectSet(cons, func(fn func([]graph.VertexID) bool) { m2.ForEach(fn) }), nil
}

func collectSet(cons *auto.Constraints, forEach func(fn func([]graph.VertexID) bool)) []string {
	var mu sync.Mutex
	var embs [][]graph.VertexID
	forEach(func(emb []graph.VertexID) bool {
		cp := make([]graph.VertexID, len(emb))
		copy(cp, emb)
		mu.Lock()
		embs = append(embs, cp)
		mu.Unlock()
		return true
	})
	return CanonicalSet(embs, cons)
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
