package verify

import (
	"sort"
	"strconv"
	"strings"

	"ceci/internal/auto"
	"ceci/internal/graph"
)

// Canonicalization: engines are compared on embedding *sets*, not counts.
// Two embeddings that differ only by permuting data vertices within an
// automorphism equivalence class of the query (internal/auto's NEC
// classes) describe the same subgraph, so each embedding is first folded
// to its orbit representative — the assignment where class members carry
// their matched data vertices in ascending order — and the set is then
// deduplicated and sorted. This makes comparison independent of which
// representative an engine emits and of whether it breaks symmetries at
// all.

// CanonicalEmbedding returns the canonical encoding of one embedding
// under the automorphism classes in cons (which may be nil).
func CanonicalEmbedding(emb []graph.VertexID, cons *auto.Constraints) string {
	canon := emb
	if cons != nil && !cons.Empty() {
		canon = make([]graph.VertexID, len(emb))
		copy(canon, emb)
		var vals []graph.VertexID
		for _, class := range cons.Classes {
			vals = vals[:0]
			for _, u := range class {
				vals = append(vals, canon[u])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for i, u := range class {
				canon[u] = vals[i]
			}
		}
	}
	var b strings.Builder
	for i, v := range canon {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return b.String()
}

// CanonicalSet canonicalizes, deduplicates, and sorts a list of
// embeddings into a comparable set representation.
func CanonicalSet(embs [][]graph.VertexID, cons *auto.Constraints) []string {
	out := make([]string, 0, len(embs))
	for _, e := range embs {
		out = append(out, CanonicalEmbedding(e, cons))
	}
	sort.Strings(out)
	w := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}
