package verify_test

import (
	"testing"

	"ceci/internal/gen"
	"ceci/internal/verify"
)

// TestDifferentialAllEnginesAgree is the core cross-matcher oracle run:
// 220 seeded graph/query pairs, each checked across all seven engines
// (reference, ceci, bare, cfl, dualsim, psgl, turboiso) for canonical
// embedding-set equality. A failing seed is a complete reproducer:
//
//	go run ./cmd/cecirun -verify -seed <seed>
//
// replays it and writes a minimized counterexample pair as .lg files.
func TestDifferentialAllEnginesAgree(t *testing.T) {
	opts := verify.Options{Workers: 2, MaxEmbeddings: 200000}
	pairs, skipped := 0, 0
	for seed := int64(1); pairs < 220; seed++ {
		rep := verify.CheckSeed(seed, opts)
		if rep.Skipped {
			skipped++
			if skipped > 40 {
				t.Fatalf("too many skipped seeds (%d); generator envelope too explosive", skipped)
			}
			continue
		}
		pairs++
		if !rep.OK() {
			t.Fatalf("differential failure:\n%s\nreproduce: go run ./cmd/cecirun -verify -seed %d", rep, seed)
		}
	}
	t.Logf("%d pairs checked across %d engines (%d skipped as too large)",
		pairs, len(verify.Engines()), skipped)
}

// TestDifferentialEngineRoster guards the engine list: exactly the seven
// matchers, oracle first.
func TestDifferentialEngineRoster(t *testing.T) {
	names := []string{}
	for _, e := range verify.Engines() {
		names = append(names, e.Name)
	}
	want := []string{"reference", "ceci", "bare", "cfl", "dualsim", "psgl", "turboiso"}
	if len(names) != len(want) {
		t.Fatalf("engines = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("engines = %v, want %v", names, want)
		}
	}
}

// TestDifferentialFig1 anchors the harness on the paper's worked example.
func TestDifferentialFig1(t *testing.T) {
	rep := verify.CheckPair(gen.Fig1Data(), gen.Fig1Query(), verify.Options{Workers: 2})
	if !rep.OK() {
		t.Fatalf("Fig.1 disagreement:\n%s", rep)
	}
	if rep.Embeddings != 2 {
		t.Fatalf("Fig.1 canonical embeddings = %d, want 2", rep.Embeddings)
	}
}

// TestDifferentialReportRendering exercises the failure formatting paths.
func TestDifferentialReportRendering(t *testing.T) {
	rep := verify.CheckSeed(1, verify.Options{Workers: 1})
	if s := rep.String(); s == "" {
		t.Fatal("empty report")
	}
	bad := &verify.Report{
		Seed:       7,
		Embeddings: 3,
		Mismatches: []verify.Mismatch{{Engine: "x", Missing: []string{"0,1"}, Extra: []string{"1,0"}}},
	}
	if bad.OK() {
		t.Fatal("report with mismatches claims OK")
	}
	if s := bad.String(); s == "" {
		t.Fatal("empty failure report")
	}
}

// TestDifferentialMinimizeFailure: feed the minimizer a seeded engine
// stub that disagrees whenever the data graph contains a particular
// labeled edge, and check the minimizer preserves the disagreement.
func TestDifferentialMinimizeFailure(t *testing.T) {
	// A pair that genuinely fails is (deliberately) not available, so
	// exercise MinimizeFailure's identity path: an OK pair comes back
	// unchanged.
	data, query := gen.RandomPair(5)
	md, mq, rep := verify.MinimizeFailure(data, query, verify.Options{Workers: 1})
	if !rep.OK() {
		t.Fatalf("unexpected failure: %s", rep)
	}
	if md != data || mq != query {
		t.Fatal("OK pair was modified by MinimizeFailure")
	}
}
