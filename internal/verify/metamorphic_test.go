package verify_test

import (
	"testing"

	"ceci/internal/auto"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/verify"
)

// TestDifferentialMetamorphicInvariants runs the full invariant battery —
// permutation, label renaming, edge-deletion monotonicity, Options
// stability (workers, ST/CGD/FGD, edge verification, incremental,
// serialized-index round-trip), automorphism accounting — on 40 seeded
// pairs.
func TestDifferentialMetamorphicInvariants(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		data, query := gen.RandomPair(seed)
		if vs := verify.CheckInvariants(data, query, seed, verify.Options{Workers: 2}); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: %d invariant violations (data %v, query %v)",
				seed, len(vs), data, query)
		}
	}
}

// TestDifferentialMetamorphicFig1 anchors the invariants on the paper's
// worked example, whose query has no non-trivial automorphisms.
func TestDifferentialMetamorphicFig1(t *testing.T) {
	if vs := verify.CheckInvariants(gen.Fig1Data(), gen.Fig1Query(), 1, verify.Options{Workers: 2}); len(vs) > 0 {
		t.Fatalf("Fig.1 violations: %v", vs)
	}
}

// TestCanonicalSetFoldsAutomorphisms: a triangle query on a triangle data
// graph has 6 automorphic images but one canonical embedding.
func TestCanonicalSetFoldsAutomorphisms(t *testing.T) {
	data := gen.QG1()
	query := gen.QG1()
	rep := verify.CheckPair(data, query, verify.Options{Workers: 1})
	if !rep.OK() {
		t.Fatalf("triangle-on-triangle disagreement:\n%s", rep)
	}
	if rep.Embeddings != 1 {
		t.Fatalf("canonical embeddings = %d, want 1", rep.Embeddings)
	}
}

// TestCanonicalEmbeddingOrbitFold: all images of one orbit must fold to
// the identical canonical key.
func TestCanonicalEmbeddingOrbitFold(t *testing.T) {
	// Path query B-A-B: the two B endpoints are an equivalence class.
	b := graph.NewBuilder(3)
	b.SetLabel(0, 1) // B
	b.SetLabel(1, 0) // A
	b.SetLabel(2, 1) // B
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	query := b.MustBuild()

	cons := auto.Compute(query)
	k1 := verify.CanonicalEmbedding([]graph.VertexID{4, 2, 9}, cons)
	k2 := verify.CanonicalEmbedding([]graph.VertexID{9, 2, 4}, cons)
	if k1 != k2 {
		t.Fatalf("orbit images canonicalize differently: %q vs %q", k1, k2)
	}
	set := verify.CanonicalSet([][]graph.VertexID{{4, 2, 9}, {9, 2, 4}}, cons)
	if len(set) != 1 {
		t.Fatalf("orbit not deduplicated: %v", set)
	}
}
