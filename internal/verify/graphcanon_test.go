package verify

import (
	"strings"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
)

// smallGraph builds a labeled graph from an edge list.
func smallGraph(t *testing.T, n int, labels []graph.Label, edges [][2]graph.VertexID) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v, l := range labels {
		b.SetLabel(graph.VertexID(v), l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// TestCanonicalGraphPermutationInvariance: isomorphic-by-construction
// graphs (random labeled graphs and their vertex permutations) must map
// to the same "c:" key, and the returned perms must compose into a
// label- and edge-preserving isomorphism between the two originals.
func TestCanonicalGraphPermutationInvariance(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		g1 := gen.WithRandomLabels(gen.ErdosRenyi(9, 14, seed), 3, seed*7)
		g2, _ := gen.PermuteVertices(g1, gen.NewRNG(seed*13))

		k1, p1 := CanonicalGraph(g1)
		k2, p2 := CanonicalGraph(g2)
		if !strings.HasPrefix(k1, "c:") {
			// Too symmetric for the budget on this seed; fallback keys
			// are not permutation invariant, nothing to assert.
			continue
		}
		if k1 != k2 {
			t.Fatalf("seed %d: canonical keys differ for isomorphic graphs:\n  %s\n  %s", seed, k1, k2)
		}

		// σ = inv(p2) ∘ p1 must be an isomorphism g1 → g2.
		n := g1.NumVertices()
		inv2 := make([]int, n)
		for v, p := range p2 {
			inv2[p] = v
		}
		sigma := make([]graph.VertexID, n)
		for v := 0; v < n; v++ {
			sigma[v] = graph.VertexID(inv2[p1[v]])
		}
		for v := 0; v < n; v++ {
			if g1.Label(graph.VertexID(v)) != g2.Label(sigma[v]) {
				t.Fatalf("seed %d: σ(%d)=%d breaks labels", seed, v, sigma[v])
			}
		}
		edges1, edges2 := 0, 0
		g1.Edges(func(u, v graph.VertexID) bool {
			edges1++
			if !g2.HasEdge(sigma[u], sigma[v]) {
				t.Fatalf("seed %d: edge (%d,%d) not preserved by σ", seed, u, v)
			}
			return true
		})
		g2.Edges(func(u, v graph.VertexID) bool { edges2++; return true })
		if edges1 != edges2 {
			t.Fatalf("seed %d: edge counts differ: %d vs %d", seed, edges1, edges2)
		}
	}
}

// TestCanonicalGraphLabelSensitivity: identical topology, different
// labels — keys must differ.
func TestCanonicalGraphLabelSensitivity(t *testing.T) {
	edges := [][2]graph.VertexID{{0, 1}, {1, 2}}
	a := smallGraph(t, 3, []graph.Label{0, 1, 0}, edges)
	b := smallGraph(t, 3, []graph.Label{0, 1, 1}, edges)
	ka, _ := CanonicalGraph(a)
	kb, _ := CanonicalGraph(b)
	if ka == kb {
		t.Fatalf("differently-labeled graphs share key %q", ka)
	}
}

// TestCanonicalGraphDistinguishesTopology: same vertex and edge counts,
// non-isomorphic shapes — keys must differ (the key embeds the full
// adjacency, so this holds even on the fallback path).
func TestCanonicalGraphDistinguishesTopology(t *testing.T) {
	labels := []graph.Label{0, 0, 0, 0}
	// 4-cycle vs triangle-plus-pendant: both n=4, m=4... triangle+pendant
	// has 4 edges too: (0,1),(1,2),(2,0),(0,3).
	cyc := smallGraph(t, 4, labels, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	tri := smallGraph(t, 4, labels, [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	kc, _ := CanonicalGraph(cyc)
	kt, _ := CanonicalGraph(tri)
	if kc == kt {
		t.Fatalf("non-isomorphic graphs share key %q", kc)
	}
}

// TestCanonicalGraphPermIsValid: the returned perm is a bijection onto
// [0, n) and encodes the graph consistently (two calls agree).
func TestCanonicalGraphPermIsValid(t *testing.T) {
	g := gen.WithRandomLabels(gen.ErdosRenyi(10, 18, 42), 4, 99)
	k1, p1 := CanonicalGraph(g)
	k2, p2 := CanonicalGraph(g)
	if k1 != k2 {
		t.Fatalf("non-deterministic key: %q vs %q", k1, k2)
	}
	seen := make([]bool, g.NumVertices())
	for v, p := range p1 {
		if p < 0 || p >= g.NumVertices() || seen[p] {
			t.Fatalf("perm not a bijection at vertex %d -> %d", v, p)
		}
		seen[p] = true
		if p != p2[v] {
			t.Fatalf("non-deterministic perm at vertex %d", v)
		}
	}
}

// TestCanonicalGraphFallback: a large unlabeled cycle is too symmetric
// for the bounded search (2n automorphisms but one WL color class of
// size n, so n! orderings); the fallback must engage, stay deterministic,
// and keep its distinguishing property against a different cycle length.
func TestCanonicalGraphFallback(t *testing.T) {
	mkCycle := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n))
		}
		return b.MustBuild()
	}
	c50 := mkCycle(50)
	k1, _ := CanonicalGraph(c50)
	if !strings.HasPrefix(k1, "x:") {
		t.Fatalf("expected fallback key for 50-cycle, got %q", k1[:2])
	}
	k2, _ := CanonicalGraph(mkCycle(50))
	if k1 != k2 {
		t.Fatal("fallback key not deterministic")
	}
	k3, _ := CanonicalGraph(mkCycle(49))
	if k1 == k3 {
		t.Fatal("different cycles share a fallback key")
	}
}

// TestCanonicalGraphIsomorphicStars: the bounded search must resolve a
// star's leaf symmetry (k! orderings collapse to one canonical form).
func TestCanonicalGraphIsomorphicStars(t *testing.T) {
	labels := []graph.Label{0, 0, 0, 0, 0, 0}
	star1 := smallGraph(t, 6, labels, [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	star2 := smallGraph(t, 6, labels, [][2]graph.VertexID{{3, 0}, {3, 1}, {3, 2}, {3, 4}, {3, 5}})
	k1, _ := CanonicalGraph(star1)
	k2, _ := CanonicalGraph(star2)
	if !strings.HasPrefix(k1, "c:") {
		t.Fatalf("star should canonicalize exactly, got %q", k1[:2])
	}
	if k1 != k2 {
		t.Fatalf("isomorphic stars got different keys:\n  %s\n  %s", k1, k2)
	}
}
