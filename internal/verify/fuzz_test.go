package verify_test

import (
	"bytes"
	"testing"

	ceci "ceci"
	"ceci/internal/gen"
	"ceci/internal/verify"
)

// Native Go fuzz targets. Run locally with:
//
//	go test -run=^$ -fuzz=FuzzMatchDifferential -fuzztime=30s ./internal/verify
//	go test -run=^$ -fuzz=FuzzIndexRoundTrip    -fuzztime=30s ./internal/verify
//
// The committed corpus lives under testdata/fuzz/<FuzzName>/; any crasher
// the fuzzer finds is written there by the Go toolchain, and CI uploads
// new entries as workflow artifacts. A failing input reduces to a bare
// PairParams tuple — replay and minimize it with `cecirun -verify`.

// FuzzMatchDifferential fuzzes the generator envelope: any (seed, shape)
// tuple becomes a clamped PairParams, and all seven engines must agree on
// the resulting pair's canonical embedding set.
func FuzzMatchDifferential(f *testing.F) {
	f.Add(int64(1), uint64(12), uint64(18), uint64(3), uint64(4))
	f.Add(int64(2), uint64(4), uint64(0), uint64(1), uint64(2))    // smallest envelope
	f.Add(int64(3), uint64(56), uint64(168), uint64(1), uint64(6)) // dense, unlabeled
	f.Add(int64(4), uint64(40), uint64(5), uint64(6), uint64(5))   // sparse, selective
	f.Add(int64(99), uint64(25), uint64(50), uint64(2), uint64(6))
	f.Fuzz(func(t *testing.T, seed int64, nv, extra, labels, qv uint64) {
		p := gen.PairParams{
			DataVertices:  int(nv % 1024),
			ExtraEdges:    int(extra % 4096),
			Labels:        int(labels % 64),
			QueryVertices: int(qv % 64),
			Seed:          seed,
		}.Clamp()
		data, query := gen.BuildPair(p)
		rep := verify.CheckPair(data, query, verify.Options{Workers: 2, MaxEmbeddings: 100000})
		if rep.Skipped {
			t.Skip("embedding cap exceeded")
		}
		if !rep.OK() {
			t.Fatalf("differential failure for %+v:\n%s", p, rep)
		}
	})
}

// FuzzIndexRoundTrip fuzzes index persistence two ways: a legitimate
// save/load round-trip must reproduce the exact embedding count, and
// feeding arbitrary bytes to the index loader must fail cleanly (error,
// never panic or a silently wrong matcher).
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(7), []byte("CECIIDX1garbage"))
	f.Add(int64(21), []byte{0xff, 0x00, 0x41, 0x99})
	f.Fuzz(func(t *testing.T, seed int64, blob []byte) {
		data, query := gen.RandomPair(seed)
		m, err := ceci.Match(data, query, &ceci.Options{Workers: 2})
		if err != nil {
			t.Fatalf("Match: %v", err)
		}
		want := m.Count()

		var buf bytes.Buffer
		if err := m.SaveIndex(&buf); err != nil {
			t.Fatalf("SaveIndex: %v", err)
		}
		m2, err := ceci.MatchWithIndex(data, query, bytes.NewReader(buf.Bytes()), &ceci.Options{Workers: 2})
		if err != nil {
			t.Fatalf("MatchWithIndex on own serialization: %v", err)
		}
		if got := m2.Count(); got != want {
			t.Fatalf("round-trip count = %d, want %d", got, want)
		}

		// Arbitrary bytes: must error out, not panic. (A fuzzer forging a
		// valid index for this exact pair would have to forge its CRC-64
		// fingerprint too, in which case equal counts are required anyway.)
		if m3, err := ceci.MatchWithIndex(data, query, bytes.NewReader(blob), &ceci.Options{Workers: 1}); err == nil {
			if got := m3.Count(); got != want {
				t.Fatalf("forged index accepted with wrong count %d (want %d)", got, want)
			}
		}
	})
}
