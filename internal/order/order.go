// Package order implements the preprocessing stage of Section 2.2:
// selecting the root query vertex, building the BFS query tree (tree
// edges vs non-tree edges), and choosing a matching (visit) order.
//
// Every matching order produced here is tree-consistent: a vertex never
// precedes its query-tree parent, which is the invariant the CECI index
// and enumerator rely on.
package order

import (
	"errors"
	"fmt"
	"sort"

	"ceci/internal/graph"
)

// Heuristic selects how the matching order is derived from the query tree.
type Heuristic int

const (
	// BFSOrder is the plain BFS traversal order used by the paper's
	// running examples.
	BFSOrder Heuristic = iota
	// LeastFrequent picks, among vertices whose parent is already placed,
	// the one with the fewest data-graph candidates (QuickSI-style).
	LeastFrequent
	// PathRanked approximates TurboIso's candidate-path ordering: it
	// scores each available vertex by candidate count divided by degree,
	// preferring selective, well-connected vertices.
	PathRanked
	// EdgeRanked approximates GpSM-style edge ranking: available vertices
	// are scored by the minimum selectivity of an edge connecting them to
	// the placed prefix.
	EdgeRanked
)

func (h Heuristic) String() string {
	switch h {
	case BFSOrder:
		return "bfs"
	case LeastFrequent:
		return "least-frequent"
	case PathRanked:
		return "path-ranked"
	case EdgeRanked:
		return "edge-ranked"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// NoParent marks the root's parent slot.
const NoParent = int32(-1)

// QueryTree is the preprocessed query: root, BFS tree, matching order, and
// the tree / non-tree edge classification.
type QueryTree struct {
	Query *graph.Graph
	Root  graph.VertexID

	// Order is the matching order; Order[0] == Root. Pos inverts it.
	Order []graph.VertexID
	Pos   []int

	// Parent[u] is u's parent in the BFS query tree (NoParent for root).
	Parent []int32
	// Children[u] lists u's tree children.
	Children [][]graph.VertexID
	// Depth[u] is the BFS depth (root = 0).
	Depth []int32

	// NTEParents[u] lists the non-tree neighbors of u that precede u in
	// the matching order (u is the NTE "child"); NTEChildren is the
	// reverse direction. Together they cover every non-tree edge once in
	// each direction.
	NTEParents  [][]graph.VertexID
	NTEChildren [][]graph.VertexID

	// CandCount[u] is the number of data vertices passing the label /
	// degree / NLC filters for u, computed during root selection and
	// reused by order heuristics.
	CandCount []int
}

// NumVertices returns the query size.
func (t *QueryTree) NumVertices() int { return t.Query.NumVertices() }

// TreeEdgeCount and NTECount report the split of query edges.
func (t *QueryTree) TreeEdgeCount() int { return t.NumVertices() - 1 }

// NTECount returns the number of non-tree edges.
func (t *QueryTree) NTECount() int {
	n := 0
	for _, l := range t.NTEParents {
		n += len(l)
	}
	return n
}

// Options configures preprocessing.
type Options struct {
	// ForcedRoot, when >= 0, overrides cost-based root selection (used by
	// tests reproducing the paper's running example and by ablations).
	ForcedRoot int
	// Heuristic selects the matching order (default BFSOrder).
	Heuristic Heuristic
}

// DefaultOptions returns the paper's defaults.
func DefaultOptions() Options { return Options{ForcedRoot: -1, Heuristic: BFSOrder} }

// Preprocess validates the query, selects the root, builds the BFS tree,
// and derives the matching order.
func Preprocess(data, query *graph.Graph, opt Options) (*QueryTree, error) {
	n := query.NumVertices()
	if n == 0 {
		return nil, errors.New("order: empty query")
	}
	if !connected(query) {
		return nil, errors.New("order: query graph must be connected")
	}

	counts := make([]int, n)
	for u := 0; u < n; u++ {
		counts[u] = CandidateCount(data, query, graph.VertexID(u))
	}

	var root graph.VertexID
	if opt.ForcedRoot >= 0 {
		if opt.ForcedRoot >= n {
			return nil, fmt.Errorf("order: forced root %d out of range", opt.ForcedRoot)
		}
		root = graph.VertexID(opt.ForcedRoot)
	} else {
		root = selectRoot(query, counts)
	}

	t := &QueryTree{
		Query:       query,
		Root:        root,
		Parent:      make([]int32, n),
		Children:    make([][]graph.VertexID, n),
		Depth:       make([]int32, n),
		NTEParents:  make([][]graph.VertexID, n),
		NTEChildren: make([][]graph.VertexID, n),
		CandCount:   counts,
	}
	t.buildBFSTree()
	if err := t.buildOrder(opt.Heuristic); err != nil {
		return nil, err
	}
	t.classifyNonTreeEdges()
	return t, nil
}

// selectRoot implements the paper's cost function
// argmin_u |candidates(u)| / degree(u), with candidate counts from the
// label+degree+NLC filters (Section 2.2). Ties break to the smaller ID.
func selectRoot(query *graph.Graph, counts []int) graph.VertexID {
	best := graph.VertexID(0)
	bestCost := float64(1 << 62)
	for u := 0; u < query.NumVertices(); u++ {
		deg := query.Degree(graph.VertexID(u))
		if deg == 0 {
			continue
		}
		cost := float64(counts[u]) / float64(deg)
		if cost < bestCost {
			bestCost = cost
			best = graph.VertexID(u)
		}
	}
	return best
}

// CandidateCount counts data vertices passing the label, degree, and
// neighborhood-label-count filters for query vertex u.
func CandidateCount(data, query *graph.Graph, u graph.VertexID) int {
	n := 0
	ForEachCandidate(data, query, u, func(graph.VertexID) { n++ })
	return n
}

// ForEachCandidate calls fn for every data vertex passing the LDF+NLC
// filters for query vertex u, in ascending vertex order.
func ForEachCandidate(data, query *graph.Graph, u graph.VertexID, fn func(graph.VertexID)) {
	qLabels := query.Labels(u)
	qDeg := query.Degree(u)
	qSig := graph.NLCOf(query, u)
	for _, v := range data.VerticesWithLabel(qLabels[0]) {
		if data.Degree(v) < qDeg {
			continue
		}
		ok := true
		for _, l := range qLabels[1:] {
			if !data.HasLabel(v, l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !data.NLC(v).Covers(qSig) {
			continue
		}
		fn(v)
	}
}

func (t *QueryTree) buildBFSTree() {
	n := t.NumVertices()
	for u := range t.Parent {
		t.Parent[u] = NoParent
		t.Depth[u] = -1
	}
	queue := make([]graph.VertexID, 0, n)
	queue = append(queue, t.Root)
	t.Depth[t.Root] = 0
	visited := make([]bool, n)
	visited[t.Root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range t.Query.Neighbors(u) {
			if !visited[w] {
				visited[w] = true
				t.Parent[w] = int32(u)
				t.Depth[w] = t.Depth[u] + 1
				t.Children[u] = append(t.Children[u], w)
				queue = append(queue, w)
			}
		}
	}
}

// buildOrder produces a tree-consistent matching order under the chosen
// heuristic. BFS order falls out of a plain queue; the others greedily
// select among "available" vertices (tree parent already placed).
func (t *QueryTree) buildOrder(h Heuristic) error {
	n := t.NumVertices()
	t.Order = make([]graph.VertexID, 0, n)
	t.Pos = make([]int, n)

	if h == BFSOrder {
		// Stable BFS: children in ascending ID order (Neighbors is sorted).
		queue := []graph.VertexID{t.Root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			t.Pos[u] = len(t.Order)
			t.Order = append(t.Order, u)
			queue = append(queue, t.Children[u]...)
		}
		if len(t.Order) != n {
			return errors.New("order: BFS did not reach all query vertices")
		}
		return nil
	}

	placed := make([]bool, n)
	available := []graph.VertexID{t.Root}
	score := func(u graph.VertexID) float64 {
		switch h {
		case LeastFrequent:
			return float64(t.CandCount[u])
		case PathRanked:
			return float64(t.CandCount[u]) / float64(t.Query.Degree(u))
		case EdgeRanked:
			// Minimum product-of-candidate-counts over edges into the
			// placed prefix; the root has no placed neighbor yet.
			best := float64(1 << 62)
			for _, w := range t.Query.Neighbors(u) {
				if placed[w] {
					s := float64(t.CandCount[u]) * float64(t.CandCount[w])
					if s < best {
						best = s
					}
				}
			}
			if best == float64(1<<62) {
				best = float64(t.CandCount[u])
			}
			return best
		default:
			return float64(u)
		}
	}
	for len(available) > 0 {
		// Pick the best-scoring available vertex (ties to smaller ID).
		sort.Slice(available, func(i, j int) bool {
			si, sj := score(available[i]), score(available[j])
			if si != sj {
				return si < sj
			}
			return available[i] < available[j]
		})
		u := available[0]
		available = available[1:]
		placed[u] = true
		t.Pos[u] = len(t.Order)
		t.Order = append(t.Order, u)
		for _, c := range t.Children[u] {
			available = append(available, c)
		}
	}
	if len(t.Order) != n {
		return errors.New("order: heuristic order did not place all vertices")
	}
	return nil
}

// classifyNonTreeEdges assigns each non-tree edge a direction: the
// endpoint earlier in the matching order is the NTE parent.
func (t *QueryTree) classifyNonTreeEdges() {
	t.Query.Edges(func(a, b graph.VertexID) bool {
		if t.Parent[a] == int32(b) || t.Parent[b] == int32(a) {
			return true // tree edge
		}
		p, c := a, b
		if t.Pos[p] > t.Pos[c] {
			p, c = c, p
		}
		t.NTEParents[c] = append(t.NTEParents[c], p)
		t.NTEChildren[p] = append(t.NTEChildren[p], c)
		return true
	})
}

func connected(g *graph.Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []graph.VertexID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count == n
}
