// Package order implements the preprocessing stage of Section 2.2:
// selecting the root query vertex, building the BFS query tree (tree
// edges vs non-tree edges), and choosing a matching (visit) order.
//
// Every matching order produced here is tree-consistent: a vertex never
// precedes its query-tree parent, which is the invariant the CECI index
// and enumerator rely on.
//
// All order construction is deterministic: heuristic ties break to the
// smallest vertex ID (see buildOrder), so the same (data, query, options)
// triple yields the same order on every platform — a property the
// cost-based planner (internal/plan) relies on for stable estimates.
package order

import (
	"errors"
	"fmt"

	"ceci/internal/graph"
)

// Heuristic selects how the matching order is derived from the query tree.
type Heuristic int

const (
	// BFSOrder is the plain BFS traversal order used by the paper's
	// running examples.
	BFSOrder Heuristic = iota
	// LeastFrequent picks, among vertices whose parent is already placed,
	// the one with the fewest data-graph candidates (QuickSI-style).
	LeastFrequent
	// PathRanked approximates TurboIso's candidate-path ordering: it
	// scores each available vertex by candidate count divided by degree,
	// preferring selective, well-connected vertices.
	PathRanked
	// EdgeRanked approximates GpSM-style edge ranking: available vertices
	// are scored by the minimum selectivity of an edge connecting them to
	// the placed prefix.
	EdgeRanked
)

// Heuristics lists every static matching-order heuristic in the fixed
// sequence the cost-based planner evaluates (and tie-breaks) them in.
func Heuristics() []Heuristic {
	return []Heuristic{BFSOrder, LeastFrequent, PathRanked, EdgeRanked}
}

func (h Heuristic) String() string {
	switch h {
	case BFSOrder:
		return "bfs"
	case LeastFrequent:
		return "least-frequent"
	case PathRanked:
		return "path-ranked"
	case EdgeRanked:
		return "edge-ranked"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// NoParent marks the root's parent slot.
const NoParent = int32(-1)

// QueryTree is the preprocessed query: root, BFS tree, matching order, and
// the tree / non-tree edge classification.
type QueryTree struct {
	Query *graph.Graph
	Root  graph.VertexID

	// Order is the matching order; Order[0] == Root. Pos inverts it.
	Order []graph.VertexID
	Pos   []int

	// Parent[u] is u's parent in the BFS query tree (NoParent for root).
	Parent []int32
	// Children[u] lists u's tree children.
	Children [][]graph.VertexID
	// Depth[u] is the BFS depth (root = 0).
	Depth []int32

	// NTEParents[u] lists the non-tree neighbors of u that precede u in
	// the matching order (u is the NTE "child"); NTEChildren is the
	// reverse direction. Together they cover every non-tree edge once in
	// each direction.
	NTEParents  [][]graph.VertexID
	NTEChildren [][]graph.VertexID

	// CandCount[u] is the number of data vertices passing the label /
	// degree / NLC filters for u, computed during root selection and
	// reused by order heuristics.
	CandCount []int
}

// NumVertices returns the query size.
func (t *QueryTree) NumVertices() int { return t.Query.NumVertices() }

// TreeEdgeCount and NTECount report the split of query edges.
func (t *QueryTree) TreeEdgeCount() int { return t.NumVertices() - 1 }

// NTECount returns the number of non-tree edges.
func (t *QueryTree) NTECount() int {
	n := 0
	for _, l := range t.NTEParents {
		n += len(l)
	}
	return n
}

// Options configures preprocessing.
type Options struct {
	// ForcedRoot, when >= 0, overrides cost-based root selection (used by
	// tests reproducing the paper's running example and by ablations).
	ForcedRoot int
	// Heuristic selects the matching order (default BFSOrder).
	Heuristic Heuristic
}

// DefaultOptions returns the paper's defaults.
func DefaultOptions() Options { return Options{ForcedRoot: -1, Heuristic: BFSOrder} }

// Preprocess validates the query, selects the root, builds the BFS tree,
// and derives the matching order.
func Preprocess(data, query *graph.Graph, opt Options) (*QueryTree, error) {
	n := query.NumVertices()
	if n == 0 {
		return nil, errors.New("order: empty query")
	}
	if !connected(query) {
		return nil, errors.New("order: query graph must be connected")
	}

	counts := make([]int, n)
	for u := 0; u < n; u++ {
		counts[u] = CandidateCount(data, query, graph.VertexID(u))
	}

	var root graph.VertexID
	if opt.ForcedRoot >= 0 {
		if opt.ForcedRoot >= n {
			return nil, fmt.Errorf("order: forced root %d out of range", opt.ForcedRoot)
		}
		root = graph.VertexID(opt.ForcedRoot)
	} else {
		root = selectRoot(query, counts)
	}

	t := &QueryTree{
		Query:       query,
		Root:        root,
		Parent:      make([]int32, n),
		Children:    make([][]graph.VertexID, n),
		Depth:       make([]int32, n),
		NTEParents:  make([][]graph.VertexID, n),
		NTEChildren: make([][]graph.VertexID, n),
		CandCount:   counts,
	}
	t.buildBFSTree()
	if err := t.buildOrder(opt.Heuristic); err != nil {
		return nil, err
	}
	t.classifyNonTreeEdges()
	return t, nil
}

// selectRoot implements the paper's cost function
// argmin_u |candidates(u)| / degree(u), with candidate counts from the
// label+degree+NLC filters (Section 2.2). Ties break to the smaller ID.
func selectRoot(query *graph.Graph, counts []int) graph.VertexID {
	best := graph.VertexID(0)
	bestCost := float64(1 << 62)
	for u := 0; u < query.NumVertices(); u++ {
		deg := query.Degree(graph.VertexID(u))
		if deg == 0 {
			continue
		}
		cost := float64(counts[u]) / float64(deg)
		if cost < bestCost {
			bestCost = cost
			best = graph.VertexID(u)
		}
	}
	return best
}

// CandidateCount counts data vertices passing the label, degree, and
// neighborhood-label-count filters for query vertex u.
func CandidateCount(data, query *graph.Graph, u graph.VertexID) int {
	n := 0
	ForEachCandidate(data, query, u, func(graph.VertexID) { n++ })
	return n
}

// ForEachCandidate calls fn for every data vertex passing the LDF+NLC
// filters for query vertex u, in ascending vertex order.
func ForEachCandidate(data, query *graph.Graph, u graph.VertexID, fn func(graph.VertexID)) {
	qLabels := query.Labels(u)
	qDeg := query.Degree(u)
	qSig := graph.NLCOf(query, u)
	for _, v := range data.VerticesWithLabel(qLabels[0]) {
		if data.Degree(v) < qDeg {
			continue
		}
		ok := true
		for _, l := range qLabels[1:] {
			if !data.HasLabel(v, l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !data.NLC(v).Covers(qSig) {
			continue
		}
		fn(v)
	}
}

func (t *QueryTree) buildBFSTree() {
	n := t.NumVertices()
	for u := range t.Parent {
		t.Parent[u] = NoParent
		t.Depth[u] = -1
	}
	queue := make([]graph.VertexID, 0, n)
	queue = append(queue, t.Root)
	t.Depth[t.Root] = 0
	visited := make([]bool, n)
	visited[t.Root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range t.Query.Neighbors(u) {
			if !visited[w] {
				visited[w] = true
				t.Parent[w] = int32(u)
				t.Depth[w] = t.Depth[u] + 1
				t.Children[u] = append(t.Children[u], w)
				queue = append(queue, w)
			}
		}
	}
}

// buildOrder produces a tree-consistent matching order under the chosen
// heuristic and fills Order/Pos.
func (t *QueryTree) buildOrder(h Heuristic) error {
	ord, err := t.orderFor(h)
	if err != nil {
		return err
	}
	t.Order = ord
	t.Pos = make([]int, len(ord))
	for i, u := range ord {
		t.Pos[u] = i
	}
	return nil
}

// DeriveOrder returns the tree-consistent matching order heuristic h
// would produce over t's BFS tree without modifying t. The cost-based
// planner uses it to enumerate every heuristic's candidate order from
// one preprocessing pass (the BFS tree and candidate counts depend only
// on the root, not on the heuristic).
func (t *QueryTree) DeriveOrder(h Heuristic) ([]graph.VertexID, error) {
	return t.orderFor(h)
}

// orderFor computes a matching order under h. BFS order falls out of a
// plain queue; the others greedily select among "available" vertices
// (tree parent already placed).
//
// Tie-breaking is explicitly deterministic: at every selection step the
// strictly smallest score wins, and equal scores break to the smallest
// vertex ID. No fallback to BFS child order remains — two vertices with
// identical heuristic scores are ordered the same way on every platform,
// which keeps planner cost estimates (and the BENCH counter baselines)
// stable across machines.
func (t *QueryTree) orderFor(h Heuristic) ([]graph.VertexID, error) {
	n := t.NumVertices()
	ord := make([]graph.VertexID, 0, n)

	if h == BFSOrder {
		// Stable BFS: children in ascending ID order (Neighbors is sorted).
		queue := []graph.VertexID{t.Root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ord = append(ord, u)
			queue = append(queue, t.Children[u]...)
		}
		if len(ord) != n {
			return nil, errors.New("order: BFS did not reach all query vertices")
		}
		return ord, nil
	}

	placed := make([]bool, n)
	available := []graph.VertexID{t.Root}
	score := func(u graph.VertexID) float64 {
		switch h {
		case LeastFrequent:
			return float64(t.CandCount[u])
		case PathRanked:
			return float64(t.CandCount[u]) / float64(t.Query.Degree(u))
		case EdgeRanked:
			// Minimum product-of-candidate-counts over edges into the
			// placed prefix; the root has no placed neighbor yet.
			best := float64(1 << 62)
			for _, w := range t.Query.Neighbors(u) {
				if placed[w] {
					s := float64(t.CandCount[u]) * float64(t.CandCount[w])
					if s < best {
						best = s
					}
				}
			}
			if best == float64(1<<62) {
				best = float64(t.CandCount[u])
			}
			return best
		default:
			return float64(u)
		}
	}
	for len(available) > 0 {
		// Explicit min-selection: smallest score, ties to smallest ID.
		bi := 0
		bs := score(available[0])
		for i := 1; i < len(available); i++ {
			s := score(available[i])
			if s < bs || (s == bs && available[i] < available[bi]) {
				bi, bs = i, s
			}
		}
		u := available[bi]
		available = append(available[:bi], available[bi+1:]...)
		placed[u] = true
		ord = append(ord, u)
		available = append(available, t.Children[u]...)
	}
	if len(ord) != n {
		return nil, errors.New("order: heuristic order did not place all vertices")
	}
	return ord, nil
}

// Reorder returns a copy of t whose matching order is ord, sharing the
// immutable BFS-tree structure (Parent, Children, Depth, CandCount) and
// reclassifying non-tree edges against the new order. ord must be a
// tree-consistent permutation of t's vertices starting at t.Root; the
// planner uses Reorder to install its chosen order without re-running
// candidate counting.
func (t *QueryTree) Reorder(ord []graph.VertexID) (*QueryTree, error) {
	n := t.NumVertices()
	if len(ord) != n {
		return nil, fmt.Errorf("order: reorder got %d vertices, query has %d", len(ord), n)
	}
	seen := make([]bool, n)
	for i, u := range ord {
		if int(u) >= n {
			return nil, fmt.Errorf("order: reorder vertex u%d out of range", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("order: reorder repeats vertex u%d", u)
		}
		seen[u] = true
		if i == 0 {
			if u != t.Root {
				return nil, fmt.Errorf("order: reorder must start at root u%d, got u%d", t.Root, u)
			}
			continue
		}
		if p := t.Parent[u]; p == NoParent || !seen[p] {
			return nil, fmt.Errorf("order: reorder visits u%d before its tree parent", u)
		}
	}
	nt := &QueryTree{
		Query:       t.Query,
		Root:        t.Root,
		Order:       append([]graph.VertexID(nil), ord...),
		Pos:         make([]int, n),
		Parent:      t.Parent,
		Children:    t.Children,
		Depth:       t.Depth,
		NTEParents:  make([][]graph.VertexID, n),
		NTEChildren: make([][]graph.VertexID, n),
		CandCount:   t.CandCount,
	}
	for i, u := range nt.Order {
		nt.Pos[u] = i
	}
	nt.classifyNonTreeEdges()
	return nt, nil
}

// classifyNonTreeEdges assigns each non-tree edge a direction: the
// endpoint earlier in the matching order is the NTE parent.
func (t *QueryTree) classifyNonTreeEdges() {
	t.Query.Edges(func(a, b graph.VertexID) bool {
		if t.Parent[a] == int32(b) || t.Parent[b] == int32(a) {
			return true // tree edge
		}
		p, c := a, b
		if t.Pos[p] > t.Pos[c] {
			p, c = c, p
		}
		t.NTEParents[c] = append(t.NTEParents[c], p)
		t.NTEChildren[p] = append(t.NTEChildren[p], c)
		return true
	})
}

func connected(g *graph.Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []graph.VertexID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// Anchor returns the query vertex with minimum eccentricity (the graph
// center) and that eccentricity, breaking ties toward the lowest vertex
// ID. Sharded serving forces this vertex as the root of every shard's
// index: any embedding mapping Anchor to data vertex v lies entirely
// within data-graph distance ecc of v, so a shard holding v's
// ecc-radius halo finds the whole embedding locally. The query must be
// connected (callers run Preprocess first, which validates that).
func Anchor(query *graph.Graph) (graph.VertexID, int) {
	n := query.NumVertices()
	best, bestEcc := graph.VertexID(0), n // ecc < n always for connected graphs
	dist := make([]int, n)
	queue := make([]graph.VertexID, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, graph.VertexID(s))
		dist[s] = 0
		ecc := 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] > ecc {
				ecc = dist[v]
			}
			for _, w := range query.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		if ecc < bestEcc {
			best, bestEcc = graph.VertexID(s), ecc
		}
	}
	return best, bestEcc
}
