package order

import (
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
)

// pathN builds a path of n vertices with label 0.
func pathN(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), 0)
	}
	for v := 0; v+1 < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAnchorPath: a path's anchor is its center (minimum eccentricity),
// ties broken by the lowest id.
func TestAnchorPath(t *testing.T) {
	cases := []struct {
		n       int
		wantV   graph.VertexID
		wantEcc int
	}{
		{1, 0, 0},
		{2, 0, 1}, // both ends have ecc 1; lowest id wins
		{3, 1, 1}, // the middle
		{5, 2, 2},
		{6, 2, 3}, // two centers (2, 3) with ecc 3; lowest id wins
	}
	for _, c := range cases {
		v, ecc := Anchor(pathN(t, c.n))
		if v != c.wantV || ecc != c.wantEcc {
			t.Errorf("P%d: Anchor = (%d, %d), want (%d, %d)", c.n, v, ecc, c.wantV, c.wantEcc)
		}
	}
}

// TestAnchorStar: a star's anchor is the hub with eccentricity 1.
func TestAnchorStar(t *testing.T) {
	b := graph.NewBuilder(5)
	for v := 0; v < 5; v++ {
		b.SetLabel(graph.VertexID(v), 0)
	}
	for leaf := 1; leaf < 5; leaf++ {
		b.AddEdge(0, graph.VertexID(leaf))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, ecc := Anchor(g)
	if v != 0 || ecc != 1 {
		t.Fatalf("star: Anchor = (%d, %d), want (0, 1)", v, ecc)
	}
}

// TestAnchorEccentricityIsMinimum: on random connected graphs the
// anchor's eccentricity must be the true minimum over all vertices,
// verified against independent BFS sweeps.
func TestAnchorEccentricityIsMinimum(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.WithRandomLabels(gen.ErdosRenyi(40, 100, seed), 3, seed)
		anchor, got := Anchor(g)
		// Independent check: BFS from every vertex.
		min := g.NumVertices()
		for s := 0; s < g.NumVertices(); s++ {
			if e := eccFrom(g, graph.VertexID(s)); e < min {
				min = e
			}
		}
		if got != min {
			t.Errorf("seed %d: anchor %d has ecc %d, true minimum is %d", seed, anchor, got, min)
		}
	}
}

// eccFrom computes s's eccentricity with a plain BFS.
func eccFrom(g *graph.Graph, s graph.VertexID) int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []graph.VertexID{s}
	ecc := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > ecc {
					ecc = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return ecc
}
