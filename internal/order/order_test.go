package order_test

import (
	"math/rand"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

func TestFig1RootSelection(t *testing.T) {
	// On the Figure 1 fixture the cost function argmin |cand(u)|/deg(u)
	// picks u3 (2 candidates after LDF+NLC, degree 4 -> cost 0.5); the
	// paper's narrative forces u1, which tests use via ForcedRoot.
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 2 {
		t.Fatalf("root = u%d, want u3 (cost 2/4)", tree.Root+1)
	}
	if tree.CandCount[0] != 2 || tree.CandCount[2] != 2 {
		t.Fatalf("candidate counts = %v", tree.CandCount)
	}
}

func TestForcedRootValidation(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	if _, err := order.Preprocess(data, query, order.Options{ForcedRoot: 99}); err == nil {
		t.Fatal("out-of-range forced root accepted")
	}
}

func TestDisconnectedQueryRejected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	query := b.MustBuild()
	data := gen.Fig1Data()
	if _, err := order.Preprocess(data, query, order.DefaultOptions()); err == nil {
		t.Fatal("disconnected query accepted")
	}
}

func TestTreeEdgeClassification(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	// 4 tree edges + 2 non-tree edges = 6 query edges.
	if tree.TreeEdgeCount() != 4 || tree.NTECount() != 2 {
		t.Fatalf("tree=%d nte=%d", tree.TreeEdgeCount(), tree.NTECount())
	}
	// Every non-tree edge appears once as parent-side and once child-side.
	parentSide, childSide := 0, 0
	for u := range tree.NTEParents {
		childSide += len(tree.NTEParents[u])
		parentSide += len(tree.NTEChildren[u])
	}
	if parentSide != childSide || childSide != tree.NTECount() {
		t.Fatalf("NTE bookkeeping inconsistent: %d vs %d", parentSide, childSide)
	}
}

// TestOrdersAreTreeConsistent: every heuristic must place parents before
// children — the invariant CECI's index relies on.
func TestOrdersAreTreeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	heuristics := []order.Heuristic{
		order.BFSOrder, order.LeastFrequent, order.PathRanked, order.EdgeRanked,
	}
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 20, 50, 3)
		query, err := gen.DFSQuery(data, 2+rng.Intn(5), rng)
		if err != nil {
			continue
		}
		for _, h := range heuristics {
			tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: -1, Heuristic: h})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			if tree.Order[0] != tree.Root {
				t.Fatalf("%v: order does not start at root", h)
			}
			seen := make([]bool, query.NumVertices())
			for _, u := range tree.Order {
				if p := tree.Parent[u]; p != order.NoParent && !seen[p] {
					t.Fatalf("%v: vertex %d placed before its parent %d (order %v)", h, u, p, tree.Order)
				}
				seen[u] = true
			}
			// Pos must invert Order.
			for i, u := range tree.Order {
				if tree.Pos[u] != i {
					t.Fatalf("%v: Pos not inverse of Order", h)
				}
			}
			// NTE parents must precede their children in the order.
			for u := range tree.NTEParents {
				for _, p := range tree.NTEParents[u] {
					if tree.Pos[p] >= tree.Pos[u] {
						t.Fatalf("%v: NTE parent %d not before %d", h, p, u)
					}
				}
			}
		}
	}
}

func TestBFSDepths(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := []int32{0, 1, 1, 2, 2}
	for u, d := range tree.Depth {
		if d != wantDepth[u] {
			t.Fatalf("depth[u%d] = %d, want %d", u+1, d, wantDepth[u])
		}
	}
}

func TestCandidateFilters(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	// u3 (label C, degree 4): v4, v6 pass; v8 lacks an E neighbor (NLC);
	// v10 fails the degree filter.
	var got []graph.VertexID
	order.ForEachCandidate(data, query, 2, func(v graph.VertexID) {
		got = append(got, v)
	})
	want := []graph.VertexID{gen.Fig1V(4), gen.Fig1V(6)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("candidates(u3) = %v, want %v", got, want)
	}
}

func TestCandidateCountMatchesForEach(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	for u := 0; u < query.NumVertices(); u++ {
		n := 0
		order.ForEachCandidate(data, query, graph.VertexID(u), func(graph.VertexID) { n++ })
		if got := order.CandidateCount(data, query, graph.VertexID(u)); got != n {
			t.Fatalf("u%d: count %d != foreach %d", u+1, got, n)
		}
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	data := gen.Fig1Data()
	b := graph.NewBuilder(1)
	single := b.MustBuild()
	// A single-vertex query is connected and should preprocess fine.
	tree, err := order.Preprocess(data, single, order.DefaultOptions())
	if err != nil {
		t.Fatalf("single vertex rejected: %v", err)
	}
	if len(tree.Order) != 1 {
		t.Fatal("single-vertex order wrong")
	}
}

func TestHeuristicStrings(t *testing.T) {
	names := map[order.Heuristic]string{
		order.BFSOrder:      "bfs",
		order.LeastFrequent: "least-frequent",
		order.PathRanked:    "path-ranked",
		order.EdgeRanked:    "edge-ranked",
	}
	for h, want := range names {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
