package order_test

import (
	"math/rand"
	"testing"

	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
)

func TestFig1RootSelection(t *testing.T) {
	// On the Figure 1 fixture the cost function argmin |cand(u)|/deg(u)
	// picks u3 (2 candidates after LDF+NLC, degree 4 -> cost 0.5); the
	// paper's narrative forces u1, which tests use via ForcedRoot.
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 2 {
		t.Fatalf("root = u%d, want u3 (cost 2/4)", tree.Root+1)
	}
	if tree.CandCount[0] != 2 || tree.CandCount[2] != 2 {
		t.Fatalf("candidate counts = %v", tree.CandCount)
	}
}

func TestForcedRootValidation(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	if _, err := order.Preprocess(data, query, order.Options{ForcedRoot: 99}); err == nil {
		t.Fatal("out-of-range forced root accepted")
	}
}

func TestDisconnectedQueryRejected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	query := b.MustBuild()
	data := gen.Fig1Data()
	if _, err := order.Preprocess(data, query, order.DefaultOptions()); err == nil {
		t.Fatal("disconnected query accepted")
	}
}

func TestTreeEdgeClassification(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	// 4 tree edges + 2 non-tree edges = 6 query edges.
	if tree.TreeEdgeCount() != 4 || tree.NTECount() != 2 {
		t.Fatalf("tree=%d nte=%d", tree.TreeEdgeCount(), tree.NTECount())
	}
	// Every non-tree edge appears once as parent-side and once child-side.
	parentSide, childSide := 0, 0
	for u := range tree.NTEParents {
		childSide += len(tree.NTEParents[u])
		parentSide += len(tree.NTEChildren[u])
	}
	if parentSide != childSide || childSide != tree.NTECount() {
		t.Fatalf("NTE bookkeeping inconsistent: %d vs %d", parentSide, childSide)
	}
}

// TestOrdersAreTreeConsistent: every heuristic must place parents before
// children — the invariant CECI's index relies on.
func TestOrdersAreTreeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	heuristics := []order.Heuristic{
		order.BFSOrder, order.LeastFrequent, order.PathRanked, order.EdgeRanked,
	}
	for trial := 0; trial < 40; trial++ {
		data := randomGraph(rng, 20, 50, 3)
		query, err := gen.DFSQuery(data, 2+rng.Intn(5), rng)
		if err != nil {
			continue
		}
		for _, h := range heuristics {
			tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: -1, Heuristic: h})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			if tree.Order[0] != tree.Root {
				t.Fatalf("%v: order does not start at root", h)
			}
			seen := make([]bool, query.NumVertices())
			for _, u := range tree.Order {
				if p := tree.Parent[u]; p != order.NoParent && !seen[p] {
					t.Fatalf("%v: vertex %d placed before its parent %d (order %v)", h, u, p, tree.Order)
				}
				seen[u] = true
			}
			// Pos must invert Order.
			for i, u := range tree.Order {
				if tree.Pos[u] != i {
					t.Fatalf("%v: Pos not inverse of Order", h)
				}
			}
			// NTE parents must precede their children in the order.
			for u := range tree.NTEParents {
				for _, p := range tree.NTEParents[u] {
					if tree.Pos[p] >= tree.Pos[u] {
						t.Fatalf("%v: NTE parent %d not before %d", h, p, u)
					}
				}
			}
		}
	}
}

func TestBFSDepths(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := []int32{0, 1, 1, 2, 2}
	for u, d := range tree.Depth {
		if d != wantDepth[u] {
			t.Fatalf("depth[u%d] = %d, want %d", u+1, d, wantDepth[u])
		}
	}
}

func TestCandidateFilters(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	// u3 (label C, degree 4): v4, v6 pass; v8 lacks an E neighbor (NLC);
	// v10 fails the degree filter.
	var got []graph.VertexID
	order.ForEachCandidate(data, query, 2, func(v graph.VertexID) {
		got = append(got, v)
	})
	want := []graph.VertexID{gen.Fig1V(4), gen.Fig1V(6)}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("candidates(u3) = %v, want %v", got, want)
	}
}

func TestCandidateCountMatchesForEach(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	for u := 0; u < query.NumVertices(); u++ {
		n := 0
		order.ForEachCandidate(data, query, graph.VertexID(u), func(graph.VertexID) { n++ })
		if got := order.CandidateCount(data, query, graph.VertexID(u)); got != n {
			t.Fatalf("u%d: count %d != foreach %d", u+1, got, n)
		}
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	data := gen.Fig1Data()
	b := graph.NewBuilder(1)
	single := b.MustBuild()
	// A single-vertex query is connected and should preprocess fine.
	tree, err := order.Preprocess(data, single, order.DefaultOptions())
	if err != nil {
		t.Fatalf("single vertex rejected: %v", err)
	}
	if len(tree.Order) != 1 {
		t.Fatal("single-vertex order wrong")
	}
}

func TestHeuristicStrings(t *testing.T) {
	names := map[order.Heuristic]string{
		order.BFSOrder:      "bfs",
		order.LeastFrequent: "least-frequent",
		order.PathRanked:    "path-ranked",
		order.EdgeRanked:    "edge-ranked",
	}
	for h, want := range names {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}

// tieFixture builds a hub-and-leaves pair where two query leaves have
// identical candidate counts (a genuine heuristic tie) and one is
// strictly rarer: data is one label-0 hub adjacent to five label-1
// leaves and one label-2 leaf; the query is a label-0 hub with leaves
// u1 (label 1), u2 (label 1), u3 (label 2).
func tieFixture() (data, query *graph.Graph) {
	db := graph.NewBuilder(7)
	db.SetLabel(0, 0)
	for v := 1; v <= 5; v++ {
		db.SetLabel(graph.VertexID(v), 1)
		db.AddEdge(0, graph.VertexID(v))
	}
	db.SetLabel(6, 2)
	db.AddEdge(0, 6)

	qb := graph.NewBuilder(4)
	qb.SetLabel(0, 0)
	qb.SetLabel(1, 1)
	qb.SetLabel(2, 1)
	qb.SetLabel(3, 2)
	qb.AddEdge(0, 1)
	qb.AddEdge(0, 2)
	qb.AddEdge(0, 3)
	return db.MustBuild(), qb.MustBuild()
}

// TestTieBreakingDeterministic pins the documented tie rule: smallest
// score first, equal scores break to the smallest vertex ID. u1 and u2
// tie exactly (both label 1, five candidates each), so every heuristic
// must emit u1 before u2; the selective u3 leads under the
// selectivity-driven heuristics and trails in plain BFS child order.
func TestTieBreakingDeterministic(t *testing.T) {
	data, query := tieFixture()
	cases := []struct {
		h    order.Heuristic
		want []graph.VertexID
	}{
		{order.BFSOrder, []graph.VertexID{0, 1, 2, 3}},
		{order.LeastFrequent, []graph.VertexID{0, 3, 1, 2}},
		{order.PathRanked, []graph.VertexID{0, 3, 1, 2}},
		{order.EdgeRanked, []graph.VertexID{0, 3, 1, 2}},
	}
	for _, tc := range cases {
		tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0, Heuristic: tc.h})
		if err != nil {
			t.Fatalf("%v: %v", tc.h, err)
		}
		for i, u := range tc.want {
			if tree.Order[i] != u {
				t.Fatalf("%v: order = %v, want %v", tc.h, tree.Order, tc.want)
			}
		}
	}
}

// TestAllTiedFallsToVertexID: when every available vertex scores
// identically, the order must be ascending vertex ID — not an artifact
// of queue or sort internals.
func TestAllTiedFallsToVertexID(t *testing.T) {
	db := graph.NewBuilder(5)
	for v := 1; v <= 4; v++ {
		db.AddEdge(0, graph.VertexID(v))
	}
	data := db.MustBuild()
	qb := graph.NewBuilder(4)
	qb.AddEdge(0, 1)
	qb.AddEdge(0, 2)
	qb.AddEdge(0, 3)
	query := qb.MustBuild()
	for _, h := range order.Heuristics() {
		tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0, Heuristic: h})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		for i, u := range tree.Order {
			if int(u) != i {
				t.Fatalf("%v: tied order = %v, want ascending IDs", h, tree.Order)
			}
		}
	}
}

// TestDeriveOrderMatchesPreprocess: DeriveOrder over one tree must
// reproduce exactly the order Preprocess builds under the same
// heuristic — the property the planner's shared-tree evaluation needs.
func TestDeriveOrderMatchesPreprocess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		data := randomGraph(rng, 18, 40, 3)
		query, err := gen.DFSQuery(data, 3+rng.Intn(4), rng)
		if err != nil {
			continue
		}
		base, err := order.Preprocess(data, query, order.Options{ForcedRoot: -1, Heuristic: order.BFSOrder})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, h := range order.Heuristics() {
			want, err := order.Preprocess(data, query, order.Options{ForcedRoot: int(base.Root), Heuristic: h})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			got, err := base.DeriveOrder(h)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			for i := range got {
				if got[i] != want.Order[i] {
					t.Fatalf("trial %d %v: DeriveOrder %v != Preprocess %v", trial, h, got, want.Order)
				}
			}
		}
	}
}

func TestReorder(t *testing.T) {
	data, query := gen.Fig1Data(), gen.Fig1Query()
	tree, err := order.Preprocess(data, query, order.Options{ForcedRoot: 0})
	if err != nil {
		t.Fatal(err)
	}
	alt, err := tree.DeriveOrder(order.LeastFrequent)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tree.Reorder(alt)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Root != tree.Root || rt.NTECount() != tree.NTECount() {
		t.Fatalf("reorder changed root or NTE count: %v vs %v", rt, tree)
	}
	for i, u := range rt.Order {
		if rt.Pos[u] != i {
			t.Fatal("reorder: Pos not inverse of Order")
		}
	}
	for u := range rt.NTEParents {
		for _, p := range rt.NTEParents[u] {
			if rt.Pos[p] >= rt.Pos[u] {
				t.Fatalf("reorder: NTE parent u%d not before u%d", p, u)
			}
		}
	}

	// Invalid orders must be rejected, not silently accepted.
	bad := append([]graph.VertexID(nil), tree.Order...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0] // wrong root + parent violation
	if _, err := tree.Reorder(bad); err == nil {
		t.Fatal("reorder accepted an order not starting at the root")
	}
	dup := append([]graph.VertexID(nil), tree.Order...)
	dup[len(dup)-1] = dup[1]
	if _, err := tree.Reorder(dup); err == nil {
		t.Fatal("reorder accepted a repeated vertex")
	}
	if _, err := tree.Reorder(tree.Order[:2]); err == nil {
		t.Fatal("reorder accepted a short order")
	}
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(labels)))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.VertexID(perm[i-1]), graph.VertexID(perm[i]))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}
