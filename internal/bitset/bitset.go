// Package bitset provides a minimal word-packed bitmap keyed by dense
// uint32 IDs. The enumeration workers use it for the injectivity check
// ("is this data vertex already matched?"): one bit per data vertex is
// 8× smaller than the []bool it replaces, which matters because every
// worker carries its own O(|V_data|) map for the lifetime of a search.
package bitset

// Bits is a fixed-size bitmap. The zero value is an empty bitmap of
// capacity 0; use New to size one.
type Bits []uint64

// New returns a bitmap able to hold ids in [0, n).
func New(n int) Bits { return make(Bits, (n+63)/64) }

// Len returns the id capacity (a multiple of 64).
func (b Bits) Len() int { return len(b) * 64 }

// Get reports whether id is set.
func (b Bits) Get(id uint32) bool { return b[id>>6]&(1<<(id&63)) != 0 }

// Set marks id.
func (b Bits) Set(id uint32) { b[id>>6] |= 1 << (id & 63) }

// Clear unmarks id.
func (b Bits) Clear(id uint32) { b[id>>6] &^= 1 << (id & 63) }
