// Package bitset provides word-packed bitmap primitives keyed by dense
// uint32 IDs. The enumeration workers use Bits for the injectivity check
// ("is this data vertex already matched?"): one bit per data vertex is
// 8× smaller than the []bool it replaces, which matters because every
// worker carries its own O(|V_data|) map for the lifetime of a search.
// ChunkBuilder backs the bitset-chunked intersection kernel in
// internal/setops: dense sorted lists are materialized 4096 values at a
// time into fixed 64-word windows that are ANDed word-parallel.
package bitset

import "math/bits"

// Bits is a fixed-size bitmap. The zero value is an empty bitmap of
// capacity 0; use New to size one.
type Bits []uint64

// New returns a bitmap able to hold ids in [0, n).
func New(n int) Bits { return make(Bits, (n+63)/64) }

// Len returns the id capacity (a multiple of 64).
func (b Bits) Len() int { return len(b) * 64 }

// Get reports whether id is set.
func (b Bits) Get(id uint32) bool { return b[id>>6]&(1<<(id&63)) != 0 }

// Set marks id.
func (b Bits) Set(id uint32) { b[id>>6] |= 1 << (id & 63) }

// Clear unmarks id.
func (b Bits) Clear(id uint32) { b[id>>6] &^= 1 << (id & 63) }

// Reset unmarks every id.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// And stores a & b into dst word by word over the shortest common word
// length and returns the number of words written. dst may alias a or b;
// words of dst beyond the common length are left untouched.
func And(dst, a, b Bits) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = a[i] & b[i]
	}
	return n
}

// AndCount returns the number of bits set in a & b (over the shortest
// common word length) without materializing the result — one popcount
// per word, the word-parallel core of the dense intersection-size path.
func AndCount(a, b Bits) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// Span is a reusable span-offset bitmap: one bit per value in the window
// [Lo(), Hi()], where Lo is aligned down to a word boundary from the
// first value of the filled list. It backs the probe intersection kernel
// in internal/setops and the cached non-tree-edge filter in
// internal/ceci: fill once from a sorted list, test membership with a
// single load-shift-mask, reuse across calls without reallocating.
//
// Unlike ChunkBuilder (a fixed 4096-value window walked along two lists
// in lockstep), a Span covers one list's entire value range at once, so
// it is the right shape when one side is probed out of lockstep or
// repeatedly.
type Span struct {
	base  uint32
	words []uint64
}

// Fill clears the span and re-fills it to cover list's value range, one
// bit per element. list must be non-empty and sorted ascending.
func (s *Span) Fill(list []uint32) {
	clear(s.words)
	s.base = list[0] &^ 63
	nw := int((list[len(list)-1]-s.base)>>6) + 1
	if cap(s.words) < nw {
		s.words = make([]uint64, nw+nw/2)
	}
	s.words = s.words[:nw]
	for _, x := range list {
		s.words[(x-s.base)>>6] |= 1 << (x & 63)
	}
}

// Test reports whether x is set. x must lie within [Lo(), Hi()].
func (s *Span) Test(x uint32) bool {
	return s.words[(x-s.base)>>6]>>(x&63)&1 == 1
}

// Empty reports whether the span has not been filled (or was Reset).
func (s *Span) Empty() bool { return len(s.words) == 0 }

// Reset clears the filled window and empties the span, keeping capacity.
func (s *Span) Reset() {
	clear(s.words)
	s.words = s.words[:0]
}

// FootprintBytes returns the span's allocated backing size — what the
// bitmap costs to keep around, independent of the currently filled
// window. The resource ledger sums these at work-unit boundaries.
func (s *Span) FootprintBytes() int64 { return int64(cap(s.words)) * 8 }

// Lo returns the smallest value covered by the filled window.
func (s *Span) Lo() uint32 { return s.base }

// Hi returns the largest value covered by the filled window (which may
// exceed the largest filled value by up to 63). The span must be
// non-empty.
func (s *Span) Hi() uint32 {
	return s.base + uint32(len(s.words))*64 - 1
}

// ChunkBits is the value width of one ChunkBuilder window: 4096 ids pack
// into 64 words (512 bytes), small enough to stay L1-resident while two
// windows are filled and ANDed.
const ChunkBits = 4096

const chunkWords = ChunkBits / 64

// ChunkBuilder materializes one ChunkBits-wide window of a sorted uint32
// list as a word-packed bitmap. It is reusable: Fill clears the previous
// window before setting the new one, so a single builder (or a pair, for
// intersections) serves an arbitrary number of windows and calls with no
// allocation. Not safe for concurrent use; each worker keeps its own.
type ChunkBuilder struct {
	// Words is the packed window; exported so kernels can AND two
	// builders' windows directly.
	Words [chunkWords]uint64
}

// Fill resets the builder and sets one bit per leading element of vals
// that falls inside [base, base+ChunkBits), returning how many elements
// it consumed. vals must be sorted ascending with every element >= base.
func (c *ChunkBuilder) Fill(vals []uint32, base uint32) int {
	for i := range c.Words {
		c.Words[i] = 0
	}
	hi := uint64(base) + ChunkBits // 64-bit: base near 1<<32 must not wrap
	for i, v := range vals {
		if uint64(v) >= hi {
			return i
		}
		off := v - base
		c.Words[off>>6] |= 1 << (off & 63)
	}
	return len(vals)
}
