package bitset

import (
	"math/rand"
	"testing"
)

func TestBitsAgainstBoolSlice(t *testing.T) {
	const n = 1000
	b := New(n)
	ref := make([]bool, n)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 10000; step++ {
		id := uint32(rng.Intn(n))
		switch rng.Intn(3) {
		case 0:
			b.Set(id)
			ref[id] = true
		case 1:
			b.Clear(id)
			ref[id] = false
		default:
			if b.Get(id) != ref[id] {
				t.Fatalf("step %d: Get(%d) = %v, want %v", step, id, b.Get(id), ref[id])
			}
		}
	}
	for id := 0; id < n; id++ {
		if b.Get(uint32(id)) != ref[id] {
			t.Fatalf("final: Get(%d) = %v, want %v", id, b.Get(uint32(id)), ref[id])
		}
	}
}

func TestBitsSizing(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		if b.Len() < n {
			t.Fatalf("New(%d).Len() = %d", n, b.Len())
		}
		if n > 0 {
			b.Set(uint32(n - 1)) // must not panic
		}
	}
}
