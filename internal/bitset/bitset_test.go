package bitset

import (
	"math/rand"
	"testing"
)

func TestBitsAgainstBoolSlice(t *testing.T) {
	const n = 1000
	b := New(n)
	ref := make([]bool, n)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 10000; step++ {
		id := uint32(rng.Intn(n))
		switch rng.Intn(3) {
		case 0:
			b.Set(id)
			ref[id] = true
		case 1:
			b.Clear(id)
			ref[id] = false
		default:
			if b.Get(id) != ref[id] {
				t.Fatalf("step %d: Get(%d) = %v, want %v", step, id, b.Get(id), ref[id])
			}
		}
	}
	for id := 0; id < n; id++ {
		if b.Get(uint32(id)) != ref[id] {
			t.Fatalf("final: Get(%d) = %v, want %v", id, b.Get(uint32(id)), ref[id])
		}
	}
}

func TestBitsSizing(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := New(n)
		if b.Len() < n {
			t.Fatalf("New(%d).Len() = %d", n, b.Len())
		}
		if n > 0 {
			b.Set(uint32(n - 1)) // must not panic
		}
	}
}

func TestResetAndCount(t *testing.T) {
	b := New(300)
	ids := []uint32{0, 1, 63, 64, 65, 127, 128, 255, 299}
	for _, id := range ids {
		b.Set(id)
	}
	if got := b.Count(); got != len(ids) {
		t.Fatalf("Count = %d, want %d", got, len(ids))
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
	for _, id := range ids {
		if b.Get(id) {
			t.Fatalf("bit %d survived Reset", id)
		}
	}
}

func TestAndAndCount(t *testing.T) {
	const n = 512
	a, b := New(n), New(n)
	ref := make([]bool, n)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		sa, sb := rng.Intn(2) == 0, rng.Intn(2) == 0
		if sa {
			a.Set(uint32(i))
		}
		if sb {
			b.Set(uint32(i))
		}
		ref[i] = sa && sb
	}
	wantCount := 0
	for _, v := range ref {
		if v {
			wantCount++
		}
	}
	if got := AndCount(a, b); got != wantCount {
		t.Fatalf("AndCount = %d, want %d", got, wantCount)
	}
	dst := New(n)
	if w := And(dst, a, b); w != len(dst) {
		t.Fatalf("And wrote %d words, want %d", w, len(dst))
	}
	for i := 0; i < n; i++ {
		if dst.Get(uint32(i)) != ref[i] {
			t.Fatalf("And bit %d = %v, want %v", i, dst.Get(uint32(i)), ref[i])
		}
	}
	if got := dst.Count(); got != wantCount {
		t.Fatalf("dst.Count = %d, want %d", got, wantCount)
	}
	// dst may alias an input.
	if w := And(a, a, b); w != len(a) {
		t.Fatalf("aliased And wrote %d words", w)
	}
	for i := 0; i < n; i++ {
		if a.Get(uint32(i)) != ref[i] {
			t.Fatalf("aliased And bit %d wrong", i)
		}
	}
}

func TestAndShortestCommonLength(t *testing.T) {
	a, b := New(128), New(256)
	a.Set(100)
	b.Set(100)
	b.Set(200)
	dst := New(256)
	dst.Set(200) // beyond common length: must be left untouched
	if w := And(dst, a, b); w != 2 {
		t.Fatalf("And over mismatched lengths wrote %d words, want 2", w)
	}
	if !dst.Get(100) || !dst.Get(200) {
		t.Fatal("And clobbered words beyond the common length")
	}
	if got := AndCount(a, b); got != 1 {
		t.Fatalf("AndCount over mismatched lengths = %d, want 1", got)
	}
}

func TestChunkBuilderFill(t *testing.T) {
	var c ChunkBuilder
	vals := []uint32{0, 1, 63, 64, 100, ChunkBits - 1, ChunkBits, ChunkBits + 5}
	n := c.Fill(vals, 0)
	if n != 6 { // values >= ChunkBits are out of window
		t.Fatalf("Fill consumed %d, want 6", n)
	}
	for _, v := range vals[:n] {
		if c.Words[v>>6]&(1<<(v&63)) == 0 {
			t.Fatalf("bit %d not set", v)
		}
	}
	set := 0
	for _, w := range c.Words {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	if set != n {
		t.Fatalf("%d bits set, want %d", set, n)
	}
	// Refill with a different window must clear the old one.
	n = c.Fill([]uint32{ChunkBits + 7}, ChunkBits)
	if n != 1 {
		t.Fatalf("refill consumed %d, want 1", n)
	}
	set = 0
	for _, w := range c.Words {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	if set != 1 {
		t.Fatalf("stale bits survived refill: %d set", set)
	}
}

func TestChunkBuilderFillTopOfRange(t *testing.T) {
	// base near 1<<32: the window end must not wrap to 0 and reject
	// everything (or worse, accept nothing and spin callers forever).
	var c ChunkBuilder
	base := uint32(1<<32 - ChunkBits)
	vals := []uint32{base, base + 1, 1<<32 - 1}
	if n := c.Fill(vals, base); n != 3 {
		t.Fatalf("Fill at top of range consumed %d, want 3", n)
	}
	off := uint32(1<<32-1) - base
	if c.Words[off>>6]&(1<<(off&63)) == 0 {
		t.Fatal("MaxUint32 bit not set")
	}
}

func TestChunkBuilderFillEmpty(t *testing.T) {
	var c ChunkBuilder
	c.Words[0] = ^uint64(0)
	if n := c.Fill(nil, 0); n != 0 {
		t.Fatalf("Fill(nil) = %d", n)
	}
	if c.Words[0] != 0 {
		t.Fatal("Fill(nil) did not clear the window")
	}
}

func TestSpanFillTestRefill(t *testing.T) {
	var s Span
	if !s.Empty() {
		t.Fatal("zero Span should be Empty")
	}
	list := []uint32{100, 163, 164, 1000, 5000}
	s.Fill(list)
	if s.Empty() {
		t.Fatal("filled Span reports Empty")
	}
	if s.Lo() != 64 { // 100 &^ 63
		t.Fatalf("Lo = %d, want 64", s.Lo())
	}
	if s.Hi() < 5000 {
		t.Fatalf("Hi = %d, want >= 5000", s.Hi())
	}
	in := map[uint32]bool{}
	for _, x := range list {
		in[x] = true
	}
	for x := s.Lo(); x <= 5000; x++ {
		if s.Test(x) != in[x] {
			t.Fatalf("Test(%d) = %v, want %v", x, s.Test(x), in[x])
		}
	}

	// Refill with a SHORTER window: the window must shrink (Test is only
	// defined inside [Lo, Hi]) and no stale bits may survive into a later,
	// longer refill.
	s.Fill([]uint32{100, 120})
	if s.Hi() != 127 {
		t.Fatalf("Hi after shorter refill = %d, want 127", s.Hi())
	}
	for x := s.Lo(); x <= s.Hi(); x++ {
		if s.Test(x) != (x == 100 || x == 120) {
			t.Fatalf("Test(%d) wrong after shorter refill", x)
		}
	}
	s.Fill([]uint32{64, 6000}) // longer again: extension must be clean
	for x := uint32(65); x < 6000; x++ {
		if s.Test(x) {
			t.Fatalf("stale bit at %d after extend refill", x)
		}
	}
	if !s.Test(64) || !s.Test(6000) {
		t.Fatal("filled values missing after extend refill")
	}

	s.Reset()
	if !s.Empty() {
		t.Fatal("Reset Span should be Empty")
	}
}

func TestSpanTopOfRange(t *testing.T) {
	var s Span
	list := []uint32{1<<32 - 100, 1<<32 - 64, 1<<32 - 1}
	s.Fill(list)
	if s.Hi() != 1<<32-1 {
		t.Fatalf("Hi = %d, want %d", s.Hi(), uint32(1<<32-1))
	}
	for _, x := range list {
		if !s.Test(x) {
			t.Fatalf("Test(%d) = false", x)
		}
	}
	if s.Test(1<<32-2) || s.Test(1<<32-65) {
		t.Fatal("unexpected bit set near top of range")
	}
}

func TestSpanSingleton(t *testing.T) {
	var s Span
	s.Fill([]uint32{0})
	if s.Lo() != 0 || s.Hi() != 63 {
		t.Fatalf("window = [%d,%d], want [0,63]", s.Lo(), s.Hi())
	}
	if !s.Test(0) || s.Test(1) || s.Test(63) {
		t.Fatal("singleton fill wrong")
	}
}
