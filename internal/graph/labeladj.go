package graph

import (
	"sort"
	"sync"
)

// labelAdj is the label-grouped adjacency index (the l2Match-style
// neighboring-label structure): for every vertex, its neighbors regrouped
// by label so that "neighbors of v carrying label l" is one contiguous
// sorted view instead of a filtered scan. Built lazily on first use and
// immutable afterwards, like the NLC cache.
//
// Layout: groups concatenates, vertex by vertex, the neighbor lists split
// into label runs (sorted by label, IDs ascending within a run).
// runStart[v]..runStart[v+1] index the runs of v in runLabel/runOff;
// runOff has one trailing sentinel so run i spans groups[runOff[i]:runOff[i+1]].
// A multi-labeled neighbor appears once per label it carries.
type labelAdj struct {
	once     sync.Once
	runStart []int32
	runLabel []Label
	runOff   []int32
	groups   []VertexID
}

// NeighborsWithLabel returns the sorted neighbors of v whose label set
// contains l. The result aliases internal storage and must not be
// modified. For single-label graphs it is Neighbors(v) (l == 0) or nil —
// no index is materialized — so unlabeled workloads pay nothing.
func (g *Graph) NeighborsWithLabel(v VertexID, l Label) []VertexID {
	if g.numLabels <= 1 && len(g.extra) == 0 {
		if l == 0 {
			return g.Neighbors(v)
		}
		return nil
	}
	g.ladj.build(g)
	la := &g.ladj
	lo, hi := int(la.runStart[v]), int(la.runStart[v+1])
	// Runs per vertex ≈ distinct neighbor labels: usually a handful, so
	// binary search over the run labels.
	i := lo + sort.Search(hi-lo, func(i int) bool { return la.runLabel[lo+i] >= l })
	if i < hi && la.runLabel[i] == l {
		return la.groups[la.runOff[i]:la.runOff[i+1]]
	}
	return nil
}

// nbrBloomCache lazily holds the per-vertex neighbor-label blooms.
type nbrBloomCache struct {
	once sync.Once
	sigs []uint64
}

// NeighborLabelBlooms returns, per data vertex v, a 64-bit bloom of the
// labels carried by v's neighbors (bit l mod 64 per label l). The
// l2Match-style label-pair prune tests candidate viability against it: a
// required label whose bit is absent proves no neighbor carries it
// (collisions only keep candidates, never drop them). Built once on
// first use; the result aliases internal storage and must not be
// modified. Safe for concurrent callers.
func (g *Graph) NeighborLabelBlooms() []uint64 {
	g.nbr.once.Do(func() {
		n := g.NumVertices()
		sigs := make([]uint64, n)
		for v := 0; v < n; v++ {
			var sig uint64
			for _, w := range g.Neighbors(VertexID(v)) {
				for _, l := range g.Labels(w) {
					sig |= 1 << (l & 63)
				}
			}
			sigs[v] = sig
		}
		g.nbr.sigs = sigs
	})
	return g.nbr.sigs
}

// build materializes the grouped adjacency once. Cost is O(E·log L_v)
// time and ~one extra copy of the adjacency array; safe for concurrent
// first callers via the Once.
func (la *labelAdj) build(g *Graph) {
	la.once.Do(func() {
		n := g.NumVertices()
		la.runStart = make([]int32, n+1)
		// Entry count: one per (neighbor, label-of-neighbor) pair.
		total := 0
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(VertexID(v)) {
				total += len(g.Labels(w))
			}
		}
		la.groups = make([]VertexID, 0, total)
		type pair struct {
			l Label
			w VertexID
		}
		var buf []pair
		for v := 0; v < n; v++ {
			la.runStart[v] = int32(len(la.runLabel))
			nbrs := g.Neighbors(VertexID(v))
			buf = buf[:0]
			for _, w := range nbrs {
				for _, l := range g.Labels(w) {
					buf = append(buf, pair{l, w})
				}
			}
			// Stable by label: neighbors arrive ID-sorted, so IDs stay
			// sorted within each label run.
			sort.SliceStable(buf, func(i, j int) bool { return buf[i].l < buf[j].l })
			for i, p := range buf {
				if i == 0 || p.l != buf[i-1].l {
					la.runLabel = append(la.runLabel, p.l)
					la.runOff = append(la.runOff, int32(len(la.groups)))
				}
				la.groups = append(la.groups, p.w)
			}
		}
		la.runStart[n] = int32(len(la.runLabel))
		la.runOff = append(la.runOff, int32(len(la.groups)))
	})
}
