package graph_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ceci/internal/graph"
)

// Golden-file coverage for the .lg loaders/writers: a known-good fixture
// must parse to the exact expected structure and survive a
// parse → write → parse round-trip; known-bad fixtures must fail with the
// loader's validation errors, not be silently repaired.

func TestGoldenLabeledFile(t *testing.T) {
	g, err := graph.LoadFile(filepath.Join("testdata", "golden_labeled.lg"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 7 {
		t.Fatalf("golden graph parsed as %v, want V=6 E=7", g)
	}
	wantLabels := map[graph.VertexID][]graph.Label{
		0: {0}, 1: {1, 5}, 2: {2}, 3: {0}, 4: {1}, 5: {3, 5, 7},
	}
	for v, want := range wantLabels {
		got := g.Labels(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d labels %v, want %v", v, got, want)
		}
		for _, l := range want {
			if !g.HasLabel(v, l) {
				t.Fatalf("vertex %d missing label %d (has %v)", v, l, got)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

// TestGoldenRoundTrip: parse → write → parse must be the identity on
// every committed .lg fixture, including the Fig. 1 pair.
func TestGoldenRoundTrip(t *testing.T) {
	paths := []string{
		filepath.Join("testdata", "golden_labeled.lg"),
		filepath.Join("..", "..", "testdata", "fig1_data.lg"),
		filepath.Join("..", "..", "testdata", "fig1_query.lg"),
	}
	for _, path := range paths {
		g, err := graph.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var buf bytes.Buffer
		if err := graph.WriteLabeled(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", path, err)
		}
		g2, err := graph.LoadLabeled(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", path, err)
		}
		assertSameGraph(t, g, g2)
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Labels(graph.VertexID(v)), g2.Labels(graph.VertexID(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d labels %v -> %v", path, v, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d labels %v -> %v", path, v, a, b)
				}
			}
		}
		// Writing the reparsed graph must reproduce identical bytes.
		var buf2 bytes.Buffer
		if err := graph.WriteLabeled(&buf2, g2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: write is not a fixpoint", path)
		}
	}
}

func TestBadFixturesRejected(t *testing.T) {
	cases := []struct {
		file string
		want string
	}{
		{"bad_header.lg", "malformed header"},
		{"bad_dup_edge.lg", "duplicate edge"},
		{"bad_label_range.lg", "label"},
		{"bad_vertex_range.lg", "out of range"},
	}
	for _, c := range cases {
		f, err := os.Open(filepath.Join("testdata", c.file))
		if err != nil {
			t.Fatal(err)
		}
		_, err = graph.LoadLabeled(f)
		f.Close()
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", c.file, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.file, err, c.want)
		}
	}
}

func TestLabeledValidationEdgeCases(t *testing.T) {
	ok := []string{
		"t\nv 0 0\nv 1 0\ne 0 1\n",            // bare section marker
		"v 0 0\nv 1 0\ne 0 1\n",               // headerless
		"t 2 1\nv 0 0\nv 1 0\ne 0 1\ne 1 1\n", // self-loop tolerated (dropped by the builder)
	}
	for _, in := range ok {
		if _, err := graph.LoadLabeled(strings.NewReader(in)); err != nil {
			t.Errorf("input %q rejected: %v", in, err)
		}
	}
	bad := []string{
		"t 2\nv 0 0\n",                        // header with one count
		"t -2 1\nv 0 0\n",                     // negative vertex count
		"t 2 x\nv 0 0\n",                      // non-integer edge count
		"t 2 1\nv 0 0\nv 1 0\ne 0 1\ne 0 1\n", // duplicate, same orientation
		"t 2 1\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n", // duplicate, flipped
		"t 2 1\nv 0 0\nv 1 0\ne 0 2\n",        // edge endpoint beyond header
		"v 0 99999999\n",                      // label beyond maxLabelValue
	}
	for _, in := range bad {
		if _, err := graph.LoadLabeled(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
