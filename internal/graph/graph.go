// Package graph provides the labeled-graph substrate shared by every
// matcher in the repository: an immutable CSR (compressed sparse row)
// representation with sorted adjacency lists, a label index, cached
// neighborhood-label-count signatures, and a mutable Builder.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). Each vertex
// carries one or more labels (the paper's L assigns a label *set*; most
// datasets use exactly one). Edges are undirected for matching purposes:
// directed inputs are symmetrized at build time, matching the paper's
// treatment ("the data graph can be directed or undirected" — candidates
// are collected over the undirected neighborhood).
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex in a Graph. IDs are dense: every value in
// [0, NumVertices) is a valid vertex.
type VertexID = uint32

// Label is a vertex label drawn from a dense alphabet [0, NumLabels).
type Label = uint32

// NoLabel is returned by Label lookups on out-of-range vertices.
const NoLabel = ^Label(0)

// Graph is an immutable undirected labeled graph in CSR form.
// Adjacency lists are sorted ascending, enabling binary-search edge probes
// and linear-time sorted intersection.
type Graph struct {
	offsets   []int64              // len = n+1; neighbors of v are neighbors[offsets[v]:offsets[v+1]]
	neighbors []VertexID           // concatenated sorted adjacency lists
	labels    []Label              // primary label per vertex (labels[v])
	extra     map[VertexID][]Label // additional labels for multi-labeled vertices (sorted)

	labelIndex [][]VertexID // labelIndex[l] = sorted vertices whose label set contains l
	numLabels  int

	nlc  nlcCache      // lazily built neighborhood-label-count signatures
	ladj labelAdj      // lazily built label-grouped adjacency (NeighborsWithLabel)
	nbr  nbrBloomCache // lazily built neighbor-label blooms (NeighborLabelBlooms)
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.neighbors) / 2 }

// NumLabels returns the size of the label alphabet (max label + 1).
func (g *Graph) NumLabels() int { return g.numLabels }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// Label returns the primary label of v.
func (g *Graph) Label(v VertexID) Label {
	if int(v) >= len(g.labels) {
		return NoLabel
	}
	return g.labels[v]
}

// Labels returns all labels of v (primary first, then extras).
// The result must not be modified.
func (g *Graph) Labels(v VertexID) []Label {
	if extras, ok := g.extra[v]; ok {
		out := make([]Label, 0, 1+len(extras))
		out = append(out, g.labels[v])
		return append(out, extras...)
	}
	return g.labels[v : v+1]
}

// HasLabel reports whether l is among v's labels.
func (g *Graph) HasLabel(v VertexID, l Label) bool {
	if g.labels[v] == l {
		return true
	}
	extras, ok := g.extra[v]
	if !ok {
		return false
	}
	i := sort.Search(len(extras), func(i int) bool { return extras[i] >= l })
	return i < len(extras) && extras[i] == l
}

// HasEdge reports whether (u, v) is an edge, via binary search on the
// shorter adjacency list.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// VerticesWithLabel returns the sorted vertices whose label set contains l.
// The result aliases internal storage and must not be modified.
func (g *Graph) VerticesWithLabel(l Label) []VertexID {
	if int(l) >= len(g.labelIndex) {
		return nil
	}
	return g.labelIndex[l]
}

// LabelFrequency returns how many vertices carry label l.
func (g *Graph) LabelFrequency(l Label) int {
	return len(g.VerticesWithLabel(l))
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// Edges calls fn once per undirected edge (u < v). It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v VertexID) bool) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(VertexID(u)) {
			if VertexID(u) < v {
				if !fn(VertexID(u), v) {
					return
				}
			}
		}
	}
}

// Connected reports whether g is a single connected component.
func (g *Graph) Connected() bool {
	n := g.NumVertices()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []VertexID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{V=%d E=%d L=%d}", g.NumVertices(), g.NumEdges(), g.numLabels)
}

// BytesEstimate returns the approximate in-memory footprint of the CSR
// arrays in bytes (used to report Table 2 style sizes).
func (g *Graph) BytesEstimate() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.neighbors))*4 + int64(len(g.labels))*4
}
