package graph_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ceci/internal/graph"
	"ceci/internal/stats"
)

func writeCSRFile(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteCSR(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func randomCSRGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(4)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}

func TestDiskCSRMatchesInMemory(t *testing.T) {
	g := randomCSRGraph(5, 200, 800)
	path := writeCSRFile(t, g)
	st := &stats.Counters{}
	d, err := graph.OpenDiskCSR(path, st)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if d.NumVertices() != g.NumVertices() || d.NumLabels() != g.NumLabels() {
		t.Fatalf("shape mismatch: %d/%d", d.NumVertices(), d.NumLabels())
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if d.Degree(id) != g.Degree(id) || d.Label(id) != g.Label(id) {
			t.Fatalf("metadata mismatch at %d", v)
		}
		nbrs, err := d.Neighbors(id)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Neighbors(id)
		if len(nbrs) != len(want) {
			t.Fatalf("adjacency length mismatch at %d", v)
		}
		for i := range want {
			if nbrs[i] != want[i] {
				t.Fatalf("adjacency mismatch at %d[%d]", v, i)
			}
		}
	}
	if st.RemoteReads.Load() == 0 || st.BytesOnWire.Load() == 0 {
		t.Fatal("disk reads not counted")
	}
}

func TestDiskCSRMaterializeRegion(t *testing.T) {
	g := randomCSRGraph(9, 300, 1200)
	path := writeCSRFile(t, g)
	d, err := graph.OpenDiskCSR(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	seeds := []graph.VertexID{0, 7}
	depth := 2
	region, err := d.MaterializeRegion(seeds, depth)
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex within `depth` of a seed must have its full adjacency.
	dist := bfsDistances(g, seeds)
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if dist[v] <= depth {
			if region.Degree(id) != g.Degree(id) {
				t.Fatalf("vertex %d (dist %d): degree %d != %d",
					v, dist[v], region.Degree(id), g.Degree(id))
			}
		}
		if region.Label(id) != g.Label(id) {
			t.Fatalf("vertex %d label lost", v)
		}
	}
}

func TestDiskCSRBadSeeds(t *testing.T) {
	g := randomCSRGraph(2, 20, 40)
	d, err := graph.OpenDiskCSR(writeCSRFile(t, g), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.MaterializeRegion([]graph.VertexID{999}, 1); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestOpenDiskCSRGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a csr at all, sorry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.OpenDiskCSR(path, nil); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := graph.OpenDiskCSR(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func bfsDistances(g *graph.Graph, seeds []graph.VertexID) []int {
	const inf = 1 << 30
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = inf
	}
	var queue []graph.VertexID
	for _, s := range seeds {
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] > dist[v]+1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
