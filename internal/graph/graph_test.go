package graph_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ceci/internal/graph"
)

func triangleWithTail() *graph.Graph {
	b := graph.NewBuilder(4)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 2)
	b.SetLabel(3, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := triangleWithTail()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %v", g)
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees: %d %d", g.Degree(2), g.Degree(3))
	}
	if g.Label(0) != 1 || g.Label(3) != 3 {
		t.Fatal("labels wrong")
	}
	if g.NumLabels() != 4 {
		t.Fatalf("numLabels = %d", g.NumLabels())
	}
}

func TestBuilderDeduplicatesAndIgnoresSelfLoops(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatal("self loop retained")
	}
}

func TestBuilderGrowOnEdge(t *testing.T) {
	b := &graph.Builder{}
	b.AddEdge(5, 9)
	g := b.MustBuild()
	if g.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10", g.NumVertices())
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	b := &graph.Builder{}
	if _, err := b.Build(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestHasEdge(t *testing.T) {
	g := triangleWithTail()
	cases := []struct {
		u, v graph.VertexID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true}, {0, 3, false}, {1, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v", c.u, c.v, got)
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(50)
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(50), rng.Intn(50)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	g := b.MustBuild()
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.Neighbors(graph.VertexID(v))
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("adjacency of %d not strictly sorted: %v", v, nbrs)
			}
		}
	}
}

func TestLabelIndex(t *testing.T) {
	g := triangleWithTail()
	if got := g.VerticesWithLabel(2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("label 2 vertices = %v", got)
	}
	if got := g.VerticesWithLabel(99); got != nil {
		t.Fatalf("out-of-range label gave %v", got)
	}
	if g.LabelFrequency(2) != 2 || g.LabelFrequency(1) != 1 {
		t.Fatal("label frequencies wrong")
	}
}

func TestMultiLabels(t *testing.T) {
	b := graph.NewBuilder(2)
	b.SetLabel(0, 5)
	b.AddExtraLabel(0, 9)
	b.AddExtraLabel(0, 3)
	b.AddExtraLabel(0, 9) // duplicate ignored
	b.AddEdge(0, 1)
	g := b.MustBuild()
	labels := g.Labels(0)
	if len(labels) != 3 || labels[0] != 5 {
		t.Fatalf("labels = %v", labels)
	}
	for _, l := range []graph.Label{3, 5, 9} {
		if !g.HasLabel(0, l) {
			t.Fatalf("missing label %d", l)
		}
	}
	if g.HasLabel(0, 4) || g.HasLabel(1, 5) {
		t.Fatal("phantom label")
	}
	// Label index covers extras.
	if got := g.VerticesWithLabel(9); len(got) != 1 || got[0] != 0 {
		t.Fatalf("extra-label index = %v", got)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := triangleWithTail()
	seen := map[[2]graph.VertexID]bool{}
	g.Edges(func(u, v graph.VertexID) bool {
		if u >= v {
			t.Fatalf("edge not normalized: (%d,%d)", u, v)
		}
		seen[[2]graph.VertexID{u, v}] = true
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("visited %d edges, want 4", len(seen))
	}
	// Early stop.
	count := 0
	g.Edges(func(u, v graph.VertexID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestMaxDegree(t *testing.T) {
	if got := triangleWithTail().MaxDegree(); got != 3 {
		t.Fatalf("max degree = %d", got)
	}
}

func TestNLCSignature(t *testing.T) {
	g := triangleWithTail()
	// Vertex 2's neighbors: 0 (label 1), 1 (label 2), 3 (label 3).
	sig := g.NLC(2)
	if sig.Count(1) != 1 || sig.Count(2) != 1 || sig.Count(3) != 1 || sig.Count(0) != 0 {
		t.Fatalf("signature = %+v", sig)
	}
	// Vertex 0: neighbors 1, 2 both label 2.
	sig0 := g.NLC(0)
	if sig0.Count(2) != 2 {
		t.Fatalf("signature(0) = %+v", sig0)
	}
}

func TestNLCCovers(t *testing.T) {
	a := graph.NLCSignature{Labels: []graph.Label{1, 2, 5}, Counts: []int32{2, 1, 3}}
	cases := []struct {
		req  graph.NLCSignature
		want bool
	}{
		{graph.NLCSignature{}, true},
		{graph.NLCSignature{Labels: []graph.Label{1}, Counts: []int32{2}}, true},
		{graph.NLCSignature{Labels: []graph.Label{1}, Counts: []int32{3}}, false},
		{graph.NLCSignature{Labels: []graph.Label{1, 5}, Counts: []int32{1, 3}}, true},
		{graph.NLCSignature{Labels: []graph.Label{3}, Counts: []int32{1}}, false},
		{graph.NLCSignature{Labels: []graph.Label{1, 2, 5}, Counts: []int32{2, 1, 3}}, true},
	}
	for i, c := range cases {
		if got := a.Covers(c.req); got != c.want {
			t.Errorf("case %d: Covers = %v", i, got)
		}
	}
}

// TestNLCDenseMatchesMap: the pooled dense counting path must agree with
// the map-based reference on multi-label and large-alphabet graphs.
func TestNLCDenseMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetLabel(graph.VertexID(v), graph.Label(rng.Intn(6)))
		}
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
		g := b.MustBuild()
		for v := 0; v < n; v++ {
			sig := g.NLC(graph.VertexID(v))
			// Reference: recount with a map.
			want := map[graph.Label]int32{}
			for _, w := range g.Neighbors(graph.VertexID(v)) {
				want[g.Label(w)]++
			}
			if len(sig.Labels) != len(want) {
				return false
			}
			for i, l := range sig.Labels {
				if sig.Counts[i] != want[l] {
					return false
				}
				if i > 0 && sig.Labels[i-1] >= l {
					return false // must be sorted
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	in := "# comment\n0 1\n1 2\n\n2 0\n"
	g, err := graph.LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
}

func TestEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 x\n"} {
		if _, err := graph.LoadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

func TestLabeledRoundTrip(t *testing.T) {
	g := triangleWithTail()
	var buf bytes.Buffer
	if err := graph.WriteLabeled(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.LoadLabeled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestLabeledMultiLabelRoundTrip(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetLabel(0, 1)
	b.AddExtraLabel(0, 7)
	b.SetLabel(1, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := graph.WriteLabeled(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.LoadLabeled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasLabel(0, 7) || g2.Label(0) != 1 {
		t.Fatal("multi-labels lost in round trip")
	}
}

func TestLabeledErrors(t *testing.T) {
	for _, bad := range []string{"v 0\n", "e 0\n", "x 1 2\n", "v a 1\n", "e 0 b\n"} {
		if _, err := graph.LoadLabeled(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	g := triangleWithTail()
	var buf bytes.Buffer
	if err := graph.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestCSRRejectsGarbage(t *testing.T) {
	if _, err := graph.ReadCSR(strings.NewReader("not a csr file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := graph.ReadCSR(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func assertSameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(graph.VertexID(v)) != b.Label(graph.VertexID(v)) {
			t.Fatalf("label mismatch at %d", v)
		}
		na, nb := a.Neighbors(graph.VertexID(v)), b.Neighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			t.Fatalf("adjacency mismatch at %d", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestBytesEstimatePositive(t *testing.T) {
	if triangleWithTail().BytesEstimate() <= 0 {
		t.Fatal("bytes estimate not positive")
	}
}

func TestFromEdgeList(t *testing.T) {
	g, err := graph.FromEdgeList([][2]graph.VertexID{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
}
