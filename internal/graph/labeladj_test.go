package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// refNeighborsWithLabel is the filtered-scan reference the grouped index
// must agree with.
func refNeighborsWithLabel(g *Graph, v VertexID, l Label) []VertexID {
	var out []VertexID
	for _, w := range g.Neighbors(v) {
		if g.HasLabel(w, l) {
			out = append(out, w)
		}
	}
	return out
}

func eqIDs(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNeighborsWithLabelMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, labels = 200, 7
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(VertexID(v), Label(rng.Intn(labels)))
		if rng.Intn(4) == 0 {
			b.AddExtraLabel(VertexID(v), Label(rng.Intn(labels)))
		}
	}
	for i := 0; i < 5*n; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	g := b.MustBuild()

	for v := 0; v < n; v++ {
		for l := 0; l < labels+1; l++ { // +1: a label past the alphabet
			got := g.NeighborsWithLabel(VertexID(v), Label(l))
			want := refNeighborsWithLabel(g, VertexID(v), Label(l))
			if !eqIDs(got, want) {
				t.Fatalf("NeighborsWithLabel(%d, %d) = %v, want %v", v, l, got, want)
			}
		}
	}
}

func TestNeighborsWithLabelSingleLabelFastPath(t *testing.T) {
	g, err := FromEdgeList([][2]VertexID{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for v := VertexID(0); v < 3; v++ {
		if !eqIDs(g.NeighborsWithLabel(v, 0), g.Neighbors(v)) {
			t.Fatalf("single-label fast path diverged at %d", v)
		}
		if got := g.NeighborsWithLabel(v, 1); got != nil {
			t.Fatalf("label 1 on unlabeled graph: %v", got)
		}
	}
}

func TestNeighborsWithLabelConcurrentFirstUse(t *testing.T) {
	b := NewBuilder(100)
	for v := 0; v < 100; v++ {
		b.SetLabel(VertexID(v), Label(v%3))
	}
	for v := 0; v < 99; v++ {
		b.AddEdge(VertexID(v), VertexID(v+1))
	}
	g := b.MustBuild()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 0; v < 100; v++ {
				l := Label((v + w) % 3)
				got := g.NeighborsWithLabel(VertexID(v), l)
				want := refNeighborsWithLabel(g, VertexID(v), l)
				if !eqIDs(got, want) {
					t.Errorf("concurrent NeighborsWithLabel(%d, %d) diverged", v, l)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
