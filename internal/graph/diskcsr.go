package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ceci/internal/stats"
)

// DiskCSR accesses a CSR-format graph file (written by WriteCSR) without
// loading the adjacency into memory: the beginning_position array
// (offsets) and the label array are resident, every adjacency list is a
// positioned read against the file. This is the paper's §5 shared-storage
// design — "there is only one copy of the data graph shared on the
// networked storage, in the Compressed Sparse Row format; each machine
// uses a beginning_position array to locate the adjacency list" — with a
// local filesystem standing in for lustre. Reads and bytes are counted in
// the provided stats so the Figure 17/20 IO analysis reflects real IO.
type DiskCSR struct {
	f       *os.File
	offsets []int64
	labels  []Label
	dataOff int64 // file offset where the neighbors array begins
	nLabels int
	st      *stats.Counters
}

// OpenDiskCSR opens path for on-demand adjacency access. st may be nil.
func OpenDiskCSR(path string, st *stats.Counters) (*DiskCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	d := &DiskCSR{f: f, st: st}
	if err := d.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func (d *DiskCSR) readHeader() error {
	var magic [8]byte
	if _, err := io.ReadFull(d.f, magic[:]); err != nil {
		return fmt.Errorf("graph: disk csr header: %w", err)
	}
	if magic != csrMagic {
		return fmt.Errorf("graph: bad csr magic %q", magic)
	}
	var hdr [3]uint64
	if err := binary.Read(d.f, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("graph: disk csr header: %w", err)
	}
	n, m2, nl := hdr[0], hdr[1], hdr[2]
	const maxReasonable = 1 << 34
	if n > maxReasonable || m2 > maxReasonable {
		return fmt.Errorf("graph: disk csr header implausible (n=%d m2=%d)", n, m2)
	}
	d.nLabels = int(nl)
	d.offsets = make([]int64, n+1)
	if err := binary.Read(d.f, binary.LittleEndian, d.offsets); err != nil {
		return fmt.Errorf("graph: disk csr offsets: %w", err)
	}
	pos, err := d.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	d.dataOff = pos
	// Labels live after the neighbors array; load them into memory (4n
	// bytes — the only per-machine resident state besides offsets).
	labelOff := d.dataOff + int64(m2)*4
	if _, err := d.f.Seek(labelOff, io.SeekStart); err != nil {
		return err
	}
	d.labels = make([]Label, n)
	if err := binary.Read(d.f, binary.LittleEndian, d.labels); err != nil {
		return fmt.Errorf("graph: disk csr labels: %w", err)
	}
	return nil
}

// Close releases the underlying file.
func (d *DiskCSR) Close() error { return d.f.Close() }

// NumVertices returns the vertex count.
func (d *DiskCSR) NumVertices() int { return len(d.offsets) - 1 }

// NumLabels returns the label alphabet size.
func (d *DiskCSR) NumLabels() int { return d.nLabels }

// Degree is free: it comes from the resident offsets array.
func (d *DiskCSR) Degree(v VertexID) int {
	return int(d.offsets[v+1] - d.offsets[v])
}

// Label is free: labels are resident.
func (d *DiskCSR) Label(v VertexID) Label { return d.labels[v] }

// Neighbors reads v's adjacency list from disk. Each call is one
// positioned read (counted in stats as a remote read).
func (d *DiskCSR) Neighbors(v VertexID) ([]VertexID, error) {
	deg := d.Degree(v)
	if deg == 0 {
		return nil, nil
	}
	buf := make([]byte, deg*4)
	off := d.dataOff + d.offsets[v]*4
	if _, err := d.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("graph: disk csr read v%d: %w", v, err)
	}
	if d.st != nil {
		d.st.RemoteReads.Add(1)
		d.st.BytesOnWire.Add(int64(len(buf)))
	}
	out := make([]VertexID, deg)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return out, nil
}

// MaterializeRegion loads, by BFS from seeds, every vertex within the
// given depth with its *complete* adjacency, returning an in-memory Graph
// over the same vertex ID space (unreached vertices keep their labels but
// have only the stub edges incident to materialized ones). A region of
// depth equal to the query tree's height is exactly what one machine
// needs to build and enumerate its embedding clusters: every candidate
// lies within that distance of a pivot and has its full adjacency and all
// neighbor labels available.
func (d *DiskCSR) MaterializeRegion(seeds []VertexID, depth int) (*Graph, error) {
	n := d.NumVertices()
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(VertexID(v), d.labels[v])
	}
	visited := make(map[VertexID]bool, len(seeds)*8)
	frontier := make([]VertexID, 0, len(seeds))
	for _, s := range seeds {
		if int(s) >= n {
			return nil, fmt.Errorf("graph: seed %d out of range", s)
		}
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, s)
		}
	}
	for level := 0; level <= depth && len(frontier) > 0; level++ {
		var next []VertexID
		for _, v := range frontier {
			nbrs, err := d.Neighbors(v)
			if err != nil {
				return nil, err
			}
			for _, w := range nbrs {
				b.AddEdge(v, w)
				if !visited[w] {
					visited[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return b.Build()
}
