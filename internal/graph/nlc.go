package graph

import "sync"

// NLCSignature is a neighborhood-label-count signature: how many neighbors
// of a vertex carry each label. Query-side signatures count every label of
// every neighbor; a data vertex v satisfies the NLC filter for query vertex
// u iff count_v(l) >= count_u(l) for every label l in u's neighborhood
// (Section 3.2 of the paper).
//
// Signatures are stored sparsely as parallel label/count slices sorted by
// label, keeping the per-vertex cost proportional to distinct neighbor
// labels rather than the alphabet size.
type NLCSignature struct {
	Labels []Label
	Counts []int32
}

// Covers reports whether sig has at least the count required by req for
// every label in req. Both signatures must be sorted by label.
func (sig NLCSignature) Covers(req NLCSignature) bool {
	i := 0
	for j := range req.Labels {
		for i < len(sig.Labels) && sig.Labels[i] < req.Labels[j] {
			i++
		}
		if i == len(sig.Labels) || sig.Labels[i] != req.Labels[j] || sig.Counts[i] < req.Counts[j] {
			return false
		}
	}
	return true
}

// Count returns the count recorded for label l (0 if absent).
func (sig NLCSignature) Count(l Label) int32 {
	lo, hi := 0, len(sig.Labels)
	for lo < hi {
		mid := (lo + hi) / 2
		if sig.Labels[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sig.Labels) && sig.Labels[lo] == l {
		return sig.Counts[lo]
	}
	return 0
}

// nlcCache lazily computes and stores data-vertex signatures. A two-level
// scheme (shards) keeps lock contention low under parallel CECI builds.
type nlcCache struct {
	once   sync.Once
	shards []nlcShard
}

const nlcShardCount = 64

type nlcShard struct {
	mu   sync.Mutex
	sigs map[VertexID]NLCSignature
}

func (c *nlcCache) init() {
	c.once.Do(func() {
		c.shards = make([]nlcShard, nlcShardCount)
		for i := range c.shards {
			c.shards[i].sigs = make(map[VertexID]NLCSignature)
		}
	})
}

// NLC returns v's neighborhood-label-count signature, computing and caching
// it on first use. Safe for concurrent callers.
func (g *Graph) NLC(v VertexID) NLCSignature {
	if g.numLabels == 1 {
		// Single-label graphs: the signature is just the degree; build it
		// on the fly instead of caching (the NLC filter then reduces to
		// the degree filter, as the paper's unlabeled queries imply).
		return NLCSignature{Labels: oneLabelZero, Counts: []int32{int32(g.Degree(v))}}
	}
	g.nlc.init()
	shard := &g.nlc.shards[v%nlcShardCount]
	shard.mu.Lock()
	if sig, ok := shard.sigs[v]; ok {
		shard.mu.Unlock()
		return sig
	}
	shard.mu.Unlock()

	sig := g.computeNLC(v)

	shard.mu.Lock()
	shard.sigs[v] = sig
	shard.mu.Unlock()
	return sig
}

var oneLabelZero = []Label{0}

func (g *Graph) computeNLC(v VertexID) NLCSignature {
	if g.numLabels <= 4096 {
		return g.computeNLCDense(v)
	}
	counts := make(map[Label]int32)
	for _, w := range g.Neighbors(v) {
		for _, l := range g.Labels(w) {
			counts[l]++
		}
	}
	return signatureFromMap(counts)
}

// computeNLCDense counts into a pooled dense array — much cheaper than a
// map for small alphabets (including multi-labeled vertices).
func (g *Graph) computeNLCDense(v VertexID) NLCSignature {
	buf := densePool.Get().(*denseCounts)
	if cap(buf.counts) < g.numLabels {
		buf.counts = make([]int32, g.numLabels)
	}
	counts := buf.counts[:g.numLabels]
	nbrs := g.Neighbors(v)
	distinct := 0
	touched := 0
	for _, w := range nbrs {
		for _, l := range g.Labels(w) {
			if counts[l] == 0 {
				distinct++
			}
			counts[l]++
			touched++
		}
	}
	sig := NLCSignature{
		Labels: make([]Label, 0, distinct),
		Counts: make([]int32, 0, distinct),
	}
	// Neighbor label sets are short relative to the alphabet for most
	// graphs; gather the touched labels by rescanning them when cheaper.
	if touched < g.numLabels/4 {
		for _, w := range nbrs {
			for _, l := range g.Labels(w) {
				if counts[l] > 0 {
					sig.Labels = append(sig.Labels, l)
					sig.Counts = append(sig.Counts, counts[l])
					counts[l] = 0
				}
			}
		}
		insertionSortSig(&sig)
	} else {
		for l, c := range counts {
			if c > 0 {
				sig.Labels = append(sig.Labels, Label(l))
				sig.Counts = append(sig.Counts, c)
				counts[l] = 0
			}
		}
	}
	densePool.Put(buf)
	return sig
}

type denseCounts struct{ counts []int32 }

var densePool = sync.Pool{New: func() any { return &denseCounts{} }}

func insertionSortSig(sig *NLCSignature) {
	for i := 1; i < len(sig.Labels); i++ {
		for j := i; j > 0 && sig.Labels[j-1] > sig.Labels[j]; j-- {
			sig.Labels[j-1], sig.Labels[j] = sig.Labels[j], sig.Labels[j-1]
			sig.Counts[j-1], sig.Counts[j] = sig.Counts[j], sig.Counts[j-1]
		}
	}
}

// NLCOf computes the signature for an arbitrary vertex of an arbitrary
// graph without caching (used for query vertices, which are few).
func NLCOf(g *Graph, v VertexID) NLCSignature {
	return g.computeNLC(v)
}

func signatureFromMap(counts map[Label]int32) NLCSignature {
	sig := NLCSignature{
		Labels: make([]Label, 0, len(counts)),
		Counts: make([]int32, 0, len(counts)),
	}
	for l := range counts {
		sig.Labels = append(sig.Labels, l)
	}
	// insertion sort: label sets are tiny
	for i := 1; i < len(sig.Labels); i++ {
		for j := i; j > 0 && sig.Labels[j-1] > sig.Labels[j]; j-- {
			sig.Labels[j-1], sig.Labels[j] = sig.Labels[j], sig.Labels[j-1]
		}
	}
	for _, l := range sig.Labels {
		sig.Counts = append(sig.Counts, counts[l])
	}
	return sig
}
