package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is ready to use. Builders are not safe for concurrent use.
type Builder struct {
	labels   []Label // primary label per vertex
	extra    map[VertexID][]Label
	adj      [][]VertexID // temporary adjacency lists
	numEdges int
	directed bool // if true, AddEdge also records the reverse direction once
}

// NewBuilder returns a Builder pre-sized for n vertices, all labeled 0.
func NewBuilder(n int) *Builder {
	b := &Builder{}
	b.Grow(n)
	return b
}

// Grow ensures the builder has at least n vertices (new ones labeled 0).
func (b *Builder) Grow(n int) {
	for len(b.labels) < n {
		b.labels = append(b.labels, 0)
		b.adj = append(b.adj, nil)
	}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return len(b.labels) }

// AddVertex appends a vertex with the given primary label and returns its ID.
func (b *Builder) AddVertex(l Label) VertexID {
	b.labels = append(b.labels, l)
	b.adj = append(b.adj, nil)
	return VertexID(len(b.labels) - 1)
}

// SetLabel assigns the primary label of v, growing the builder if needed.
func (b *Builder) SetLabel(v VertexID, l Label) {
	b.Grow(int(v) + 1)
	b.labels[v] = l
}

// AddExtraLabel attaches an additional label to v (multi-labeled vertices,
// as in the paper's HU dataset where vertices carry one or more of 90
// labels).
func (b *Builder) AddExtraLabel(v VertexID, l Label) {
	b.Grow(int(v) + 1)
	if b.labels[v] == l {
		return
	}
	if b.extra == nil {
		b.extra = make(map[VertexID][]Label)
	}
	for _, e := range b.extra[v] {
		if e == l {
			return
		}
	}
	b.extra[v] = append(b.extra[v], l)
}

// AddEdge records the undirected edge (u, v). Self loops are ignored
// (subgraph isomorphism never maps a query edge onto a loop). Parallel
// edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v VertexID) {
	if u == v {
		return
	}
	max := int(u)
	if int(v) > max {
		max = int(v)
	}
	b.Grow(max + 1)
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	b.numEdges++
}

// Build finalizes the graph: sorts adjacency lists, removes duplicate
// edges, builds the label index, and releases builder storage.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	g := &Graph{
		offsets: make([]int64, n+1),
		labels:  b.labels,
	}

	// Sort and deduplicate each adjacency list.
	total := 0
	for v := 0; v < n; v++ {
		lst := b.adj[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		w := 0
		for i, x := range lst {
			if i == 0 || x != lst[i-1] {
				lst[w] = x
				w++
			}
		}
		b.adj[v] = lst[:w]
		total += w
	}

	g.neighbors = make([]VertexID, total)
	pos := int64(0)
	for v := 0; v < n; v++ {
		g.offsets[v] = pos
		copy(g.neighbors[pos:], b.adj[v])
		pos += int64(len(b.adj[v]))
		b.adj[v] = nil
	}
	g.offsets[n] = pos

	// Multi-labels: sort extras and compute alphabet size.
	maxLabel := Label(0)
	for _, l := range g.labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if len(b.extra) > 0 {
		g.extra = make(map[VertexID][]Label, len(b.extra))
		for v, extras := range b.extra {
			sort.Slice(extras, func(i, j int) bool { return extras[i] < extras[j] })
			g.extra[v] = extras
			for _, l := range extras {
				if l > maxLabel {
					maxLabel = l
				}
			}
		}
	}
	if n > 0 {
		g.numLabels = int(maxLabel) + 1
	}

	// Label index.
	g.labelIndex = make([][]VertexID, g.numLabels)
	for v := 0; v < n; v++ {
		for _, l := range g.Labels(VertexID(v)) {
			g.labelIndex[l] = append(g.labelIndex[l], VertexID(v))
		}
	}

	if n == 0 {
		return nil, errors.New("graph: empty graph")
	}
	return g, nil
}

// MustBuild is Build but panics on error; convenient in tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: MustBuild: %v", err))
	}
	return g
}

// FromEdgeList builds an unlabeled graph (all labels 0) from an edge list.
func FromEdgeList(edges [][2]VertexID) (*Graph, error) {
	b := &Builder{}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
