package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text formats
//
// Edge list (unlabeled):      one "u v" pair per line; '#' comments.
// Labeled graph (.lg):        header "t <n> <m>", then "v <id> <label...>"
//                             lines and "e <u> <v>" lines — the format used
//                             by the subgraph-matching literature's query
//                             sets (and by TurboIso/CFLMatch artifacts).

// LoadEdgeList reads an unlabeled edge list from r.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	b := &Builder{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", lineNo, err)
		}
		b.AddEdge(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build()
}

// maxLabelValue bounds label values accepted by the loader. The dense
// label alphabet materializes a per-label index, so an absurd label value
// is an input error, not a 2^32-entry allocation.
const maxLabelValue = 1 << 24

// LoadLabeled reads the "t/v/e" labeled-graph format from r.
//
// The loader validates the input rather than silently repairing it: a
// malformed header, a vertex or edge referring to an ID at or beyond the
// header's declared vertex count, a label beyond maxLabelValue, and a
// duplicate edge (in either orientation) are all errors with line
// numbers, since each one signals a corrupt or mis-generated artifact.
func LoadLabeled(r io.Reader) (*Graph, error) {
	b := &Builder{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	declaredV := int64(-1)
	seenEdges := map[[2]uint64]int{}
	checkID := func(id uint64) error {
		if declaredV >= 0 && id >= uint64(declaredV) {
			return fmt.Errorf("graph: line %d: vertex %d out of range [0,%d) declared by header", lineNo, id, declaredV)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			switch {
			case len(fields) == 1:
				// bare section marker; counts unknown
			case len(fields) >= 3:
				n, err := strconv.ParseInt(fields[1], 10, 32)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("graph: line %d: malformed header vertex count %q", lineNo, fields[1])
				}
				if _, err := strconv.ParseInt(fields[2], 10, 64); err != nil {
					return nil, fmt.Errorf("graph: line %d: malformed header edge count %q", lineNo, fields[2])
				}
				declaredV = n
			default:
				return nil, fmt.Errorf("graph: line %d: malformed header %q (want \"t <vertices> <edges>\")", lineNo, line)
			}
		case "v":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: vertex needs id and label", lineNo)
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if err := checkID(id); err != nil {
				return nil, err
			}
			for i, f := range fields[2:] {
				// some variants append a degree column; accept pure ints only
				l, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
				}
				if l > maxLabelValue {
					return nil, fmt.Errorf("graph: line %d: label %d out of range [0,%d]", lineNo, l, maxLabelValue)
				}
				if i == 0 {
					b.SetLabel(VertexID(id), Label(l))
				} else {
					b.AddExtraLabel(VertexID(id), Label(l))
				}
			}
		case "e":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs two endpoints", lineNo)
			}
			u, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			v, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if err := checkID(u); err != nil {
				return nil, err
			}
			if err := checkID(v); err != nil {
				return nil, err
			}
			key := [2]uint64{u, v}
			if v < u {
				key = [2]uint64{v, u}
			}
			if first, dup := seenEdges[key]; dup {
				return nil, fmt.Errorf("graph: line %d: duplicate edge (%d,%d) (first at line %d)", lineNo, u, v, first)
			}
			seenEdges[key] = lineNo
			b.AddEdge(VertexID(u), VertexID(v))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading labeled graph: %w", err)
	}
	return b.Build()
}

// LoadFile loads a graph from path, dispatching on extension:
// ".lg" labeled format, anything else edge list.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".lg") {
		return LoadLabeled(f)
	}
	return LoadEdgeList(f)
}

// WriteLabeled writes g in the "t/v/e" format.
func WriteLabeled(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "t %d %d\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "v %d", v)
		for _, l := range g.Labels(VertexID(v)) {
			fmt.Fprintf(bw, " %d", l)
		}
		fmt.Fprintln(bw)
	}
	var werr error
	g.Edges(func(u, v VertexID) bool {
		_, werr = fmt.Fprintf(bw, "e %d %d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Binary CSR format (".csr"): the on-disk layout used by the shared-storage
// distributed mode (Section 5 of the paper keeps one CSR copy on a lustre
// filesystem and locates adjacency lists via a beginning_position array).
//
// Layout (little endian):
//   magic "CECICSR1" (8 bytes)
//   n uint64, m2 uint64 (directed half-edge count), numLabels uint64
//   offsets [n+1]int64
//   neighbors [m2]uint32
//   labels [n]uint32

var csrMagic = [8]byte{'C', 'E', 'C', 'I', 'C', 'S', 'R', '1'}

// WriteCSR serializes g into the binary CSR format.
func WriteCSR(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{uint64(g.NumVertices()), uint64(len(g.neighbors)), uint64(g.numLabels)}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.neighbors); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.labels); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSR deserializes a graph written by WriteCSR.
func ReadCSR(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: csr header: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("graph: bad csr magic %q", magic)
	}
	var n, m2, nl uint64
	for _, p := range []*uint64{&n, &m2, &nl} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: csr header: %w", err)
		}
	}
	const maxReasonable = 1 << 34
	if n > maxReasonable || m2 > maxReasonable {
		return nil, fmt.Errorf("graph: csr header implausible (n=%d m2=%d)", n, m2)
	}
	g := &Graph{
		offsets:   make([]int64, n+1),
		neighbors: make([]VertexID, m2),
		labels:    make([]Label, n),
		numLabels: int(nl),
	}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, fmt.Errorf("graph: csr offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.neighbors); err != nil {
		return nil, fmt.Errorf("graph: csr neighbors: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.labels); err != nil {
		return nil, fmt.Errorf("graph: csr labels: %w", err)
	}
	g.labelIndex = make([][]VertexID, g.numLabels)
	for v := uint64(0); v < n; v++ {
		l := g.labels[v]
		if int(l) >= len(g.labelIndex) {
			return nil, fmt.Errorf("graph: csr label %d out of range", l)
		}
		g.labelIndex[l] = append(g.labelIndex[l], VertexID(v))
	}
	return g, nil
}
