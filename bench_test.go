// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (Section 6), sized so `go test -bench=. -benchmem` completes
// on a laptop. The cecibench command runs the full-size experiments and
// prints the paper's row/series formats; these benches track the same
// code paths continuously.
//
// Per-experiment map (see DESIGN.md §6 and EXPERIMENTS.md):
//
//	Table 2     -> BenchmarkTable2_IndexBuild
//	Figure 7/8  -> BenchmarkFig7_* (CECI vs DualSim vs PsgL, all embeddings)
//	Figure 9    -> BenchmarkFig9_* (first-1024 labeled, CECI vs CFLMatch)
//	Figure 10   -> BenchmarkFig10_* (CECI vs TurboIso)
//	Figure 11   -> BenchmarkFig11_* (ST vs CGD vs FGD schedules)
//	Figure 13/14-> BenchmarkFig13_* (unit measurement + schedule sim)
//	Figure 16/17-> BenchmarkFig16_* (distributed simulation)
//	Figure 18/19-> BenchmarkFig19_* (pipeline ablations)
//	setops      -> BenchmarkSetops_* (the Lemma 2 hot path)
package ceci_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ceci"
	"ceci/internal/baseline"
	"ceci/internal/baseline/cfl"
	"ceci/internal/baseline/dualsim"
	"ceci/internal/baseline/psgl"
	"ceci/internal/baseline/turboiso"
	icec "ceci/internal/ceci"
	"ceci/internal/cluster"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/graph"
	"ceci/internal/order"
	"ceci/internal/setops"
	"ceci/internal/workload"
)

// Bench datasets: small enough for -bench runs, shaped like the paper's.
var (
	benchSkewed  = gen.ChungLu(8000, 6, 2.1, 1)  // wiki-talk-like skew
	benchSmall   = gen.ChungLu(2500, 4, 2.1, 8)  // for the cycle-heavy QG4
	benchSocial  = gen.ChungLu(6000, 12, 2.3, 2) // LJ-like
	benchLabeled = gen.WithRandomLabels(gen.Kronecker(12, 4, 3), 50, 4)
	benchDense   = gen.WithRandomMultiLabels(gen.ErdosRenyi(1000, 40000, 5), 90, 3, 6)
)

func buildFor(b *testing.B, data, query *graph.Graph) (*icec.Index, *order.QueryTree) {
	b.Helper()
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return icec.Build(data, tree, icec.Options{}), tree
}

// BenchmarkTable2_IndexBuild measures CECI construction + refinement (the
// quantity whose size Table 2 reports and whose cost Figure 20 breaks
// down).
func BenchmarkTable2_IndexBuild(b *testing.B) {
	for _, q := range []struct {
		name  string
		query *graph.Graph
	}{
		{"QG1", gen.QG1()}, {"QG3", gen.QG3()}, {"QG5", gen.QG5()},
	} {
		b.Run(q.name, func(b *testing.B) {
			tree, err := order.Preprocess(benchSkewed, q.query, order.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var bytes int64
			for i := 0; i < b.N; i++ {
				ix := icec.Build(benchSkewed, tree, icec.Options{})
				bytes = ix.SizeBytes()
			}
			b.ReportMetric(float64(bytes), "index-bytes")
		})
	}
}

// Figure 7/8: all-embeddings listing, CECI vs the parallel baselines.
func BenchmarkFig7_CECI_QG1(b *testing.B) { benchCECIAll(b, benchSkewed, gen.QG1()) }
func BenchmarkFig7_CECI_QG4(b *testing.B) { benchCECIAll(b, benchSmall, gen.QG4()) }
func BenchmarkFig8_CECI_QG2(b *testing.B) { benchCECIAll(b, benchSocial, gen.QG2()) }
func BenchmarkFig8_CECI_QG3(b *testing.B) { benchCECIAll(b, benchSocial, gen.QG3()) }
func BenchmarkFig7_PsgL_QG1(b *testing.B) { benchBaselineAll(b, psgl.ForEach, benchSkewed, gen.QG1()) }
func BenchmarkFig7_PsgL_QG4(b *testing.B) { benchBaselineAll(b, psgl.ForEach, benchSmall, gen.QG4()) }
func BenchmarkFig7_DualSim_QG1(b *testing.B) {
	benchBaselineAll(b, func(d, q *graph.Graph, o baseline.Options, fn func([]graph.VertexID) bool) error {
		return dualsim.ForEachOpt(d, q, dualsim.Options{Options: o, BufferPages: 128}, fn)
	}, benchSkewed, gen.QG1())
}

func benchCECIAll(b *testing.B, data, query *graph.Graph) {
	b.ReportAllocs()
	var n int64
	for i := 0; i < b.N; i++ {
		tree, err := order.Preprocess(data, query, order.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		ix := icec.Build(data, tree, icec.Options{})
		n = enum.NewMatcher(ix, enum.Options{Strategy: workload.FGD}).Count()
	}
	b.ReportMetric(float64(n), "embeddings")
}

func benchBaselineAll(b *testing.B, f baseline.ForEachFunc, data, query *graph.Graph) {
	b.ReportAllocs()
	var n int64
	for i := 0; i < b.N; i++ {
		var c atomic.Int64
		err := f(data, query, baseline.Options{}, func([]graph.VertexID) bool {
			c.Add(1)
			return true
		})
		if errors.Is(err, psgl.ErrIntermediatesExceeded) {
			b.Skip("baseline DNF: intermediate blowup (the workload the figure reports as DNF)")
		}
		if err != nil {
			b.Fatal(err)
		}
		n = c.Load()
	}
	b.ReportMetric(float64(n), "embeddings")
}

// Figure 9: first-1024 labeled matching, CECI vs CFLMatch.
func BenchmarkFig9_CECI_First1024(b *testing.B) {
	query := mustQuery(b, benchLabeled, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := ceci.Match(benchLabeled, query, &ceci.Options{Workers: 1, Limit: 1024, Strategy: ceci.StrategyCoarse})
		if err != nil {
			b.Fatal(err)
		}
		m.Count()
	}
}

func BenchmarkFig9_CFL_First1024(b *testing.B) {
	query := mustQuery(b, benchLabeled, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfl.Count(benchLabeled, query, baseline.Options{Workers: 1, Limit: 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 10: CECI vs TurboIso on the dense multi-labeled graph.
func BenchmarkFig10_CECI(b *testing.B) {
	query := mustQuery(b, benchDense, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := ceci.Match(benchDense, query, &ceci.Options{Workers: 1, Limit: 1024, Strategy: ceci.StrategyCoarse})
		if err != nil {
			b.Fatal(err)
		}
		m.Count()
	}
}

func BenchmarkFig10_TurboIso(b *testing.B) {
	query := mustQuery(b, benchDense, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := turboiso.Count(benchDense, query, turboiso.Options{
			Options: baseline.Options{Workers: 1, Limit: 1024},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 11: strategy scheduling over measured unit costs.
func BenchmarkFig11_Decompose(b *testing.B) {
	ix, _ := buildFor(b, benchSkewed, gen.QG3())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		units := workload.Decompose(ix, nil, 0.2, 16)
		if len(units) == 0 {
			b.Fatal("no units")
		}
	}
}

// Figure 13/14: per-unit measurement feeding the scalability simulation.
func BenchmarkFig13_MeasureUnits(b *testing.B) {
	ix, _ := buildFor(b, benchSkewed, gen.QG1())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := enum.NewMatcher(ix, enum.Options{Workers: 1, Strategy: workload.CGD})
		costs := m.MeasureUnits()
		workload.SimulateMakespan(durationsOf(costs), 16, workload.CGD)
	}
}

// Figure 16/17: one distributed simulation step (replicated mode).
func BenchmarkFig16_ClusterSimulate(b *testing.B) {
	small := gen.ChungLu(3000, 6, 2.1, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Simulate(small, gen.QG1(), cluster.Config{
			Machines: 4, WorkersPerMachine: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 18/19 ablations: intersection vs edge verification, refinement
// on/off — the components whose stacked speedup Figure 19 plots.
func BenchmarkFig19_FullCECI(b *testing.B)   { benchAblation(b, false, false) }
func BenchmarkFig19_EdgeVerify(b *testing.B) { benchAblation(b, false, true) }
func BenchmarkFig19_NoRefine(b *testing.B)   { benchAblation(b, true, true) }

func benchAblation(b *testing.B, skipRefine, edgeVerify bool) {
	query := gen.QG3()
	tree, err := order.Preprocess(benchSkewed, query, order.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := icec.Build(benchSkewed, tree, icec.Options{SkipRefinement: skipRefine})
		enum.NewMatcher(ix, enum.Options{EdgeVerification: edgeVerify, Strategy: workload.FGD}).Count()
	}
}

// Set-intersection kernels: the Lemma 2 hot path.
func BenchmarkSetops_IntersectMerge(b *testing.B) {
	x, y := ladder(4096, 3), ladder(4096, 5)
	b.ReportAllocs()
	var dst []uint32
	for i := 0; i < b.N; i++ {
		dst = setops.Intersect(dst[:0], x, y)
	}
}

func BenchmarkSetops_IntersectGallop(b *testing.B) {
	x, y := ladder(64, 97), ladder(65536, 3)
	b.ReportAllocs()
	var dst []uint32
	for i := 0; i < b.N; i++ {
		dst = setops.Intersect(dst[:0], x, y)
	}
}

func BenchmarkSetops_IntersectK(b *testing.B) {
	lists := [][]uint32{ladder(2048, 3), ladder(2048, 5), ladder(2048, 7)}
	var sc setops.Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		setops.IntersectK(&sc, lists)
	}
}

// Edge probe vs intersection: the micro-comparison behind Lemma 2.
func BenchmarkLemma2_EdgeVerification(b *testing.B) {
	data := benchSocial
	m, err := ceci.Match(data, gen.QG3(), &ceci.Options{EdgeVerification: true, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count()
	}
}

func BenchmarkLemma2_Intersection(b *testing.B) {
	data := benchSocial
	m, err := ceci.Match(data, gen.QG3(), &ceci.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count()
	}
}

func ladder(n int, step uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i) * step
	}
	return out
}

func durationsOf(costs []enum.UnitCost) []time.Duration {
	ds := make([]time.Duration, len(costs))
	for i, c := range costs {
		ds[i] = c.Duration
	}
	return ds
}

func mustQuery(b *testing.B, data *graph.Graph, size int) *graph.Graph {
	b.Helper()
	qs := gen.QuerySet(data, size, 1, 77)
	if len(qs) == 0 {
		b.Skip("no query region")
	}
	return qs[0]
}
