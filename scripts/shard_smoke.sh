#!/usr/bin/env bash
# Out-of-process smoke test for the sharded serving fleet: partition the
# Figure 1 fixture into three shards, boot one shard-mode ceciserve per
# part plus the ceciroute router, drive a traced query through the
# router with curl, and check the merged count (Figure 1 has exactly two
# embeddings), the stitched trace, and clean SIGTERM shutdowns.
#
# Run from the repository root: bash scripts/shard_smoke.sh
set -euo pipefail

ROUTER_PORT=${ROUTER_PORT:-18090}
SHARD_BASE=${SHARD_BASE:-18091}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() { # wait_ready <url>
  for _ in $(seq 1 50); do
    curl -sf "$1" >/dev/null && return 0
    sleep 0.2
  done
  echo "shard-smoke: $1 never became ready" >&2
  return 1
}

go build -o "$WORK/ceciserve" ./cmd/ceciserve
go build -o "$WORK/ceciroute" ./cmd/ceciroute

# 1. Partition the fixture into three pivot-owned shards.
"$WORK/ceciroute" -partition -data testdata/fig1_data.lg \
  -shards 3 -radius 2 -out "$WORK/shards"
test -f "$WORK/shards/manifest.json"

# 2. Boot the fleet: one shard-mode ceciserve per partition.
SHARD_FLAGS=()
for id in 0 1 2; do
  port=$((SHARD_BASE + id))
  "$WORK/ceciserve" -shard-manifest "$WORK/shards" -shard-id "$id" \
    -listen "127.0.0.1:$port" &
  PIDS+=($!)
  SHARD_FLAGS+=(-shard "http://127.0.0.1:$port")
done
for id in 0 1 2; do
  wait_ready "http://127.0.0.1:$((SHARD_BASE + id))/healthz?ready=1"
done

# 3. Boot the router; its readiness gate opens once every shard answers
# its health probe.
"$WORK/ceciroute" -manifest "$WORK/shards" "${SHARD_FLAGS[@]}" \
  -listen "127.0.0.1:$ROUTER_PORT" -health-interval 100ms &
ROUTER=$!
PIDS+=("$ROUTER")
wait_ready "http://127.0.0.1:$ROUTER_PORT/healthz?ready=1"

# 4. One traced query through the router: the merged count must equal
# the committed single-node expectation (two Figure 1 embeddings), with
# every shard answering.
TP='00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01'
curl -sf -X POST "http://127.0.0.1:$ROUTER_PORT/query" \
  -H 'Content-Type: application/json' \
  -H "traceparent: $TP" \
  -d "{\"query\": \"$(awk '{printf "%s\\n", $0}' testdata/fig1_query.lg)\"}" \
  | tee "$WORK/query.json"
echo
grep -q '"count":2' "$WORK/query.json"
grep -q '"shards_ok":3' "$WORK/query.json"
if grep -q '"partial":true' "$WORK/query.json"; then
  echo "shard-smoke: full fleet answered partial" >&2
  exit 1
fi

# 5. The routed query is in the flight recorder and its exported span
# tree stitches the router's spans with every shard's.
curl -sf "http://127.0.0.1:$ROUTER_PORT/queryz" | tee "$WORK/queryz.json" >/dev/null
grep -q '4bf92f3577b34da6a3ce929d0e0e4736' "$WORK/queryz.json"
curl -sf "http://127.0.0.1:$ROUTER_PORT/tracez/4bf92f3577b34da6a3ce929d0e0e4736" \
  -o "$WORK/tracez.json"
python3 - "$WORK/tracez.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
evs = [e for e in doc['traceEvents'] if e['ph'] == 'X']
names = [e['name'] for e in evs]
assert names.count('route-query') == 1, names
assert names.count('scatter') == 3, names
assert names.count('service-query') == 3, names
by_id = {e['args']['span_id']: e for e in evs}
scatter_ids = {e['args']['span_id'] for e in evs if e['name'] == 'scatter'}
root_id = next(e['args']['span_id'] for e in evs if e['name'] == 'route-query')
for e in evs:
    if e['name'] == 'scatter':
        assert e['args']['parent_span_id'] == root_id, e
    if e['name'] == 'service-query':
        assert e['args']['parent_span_id'] in scatter_ids, e
print(f"shard-smoke: {len(evs)} spans, one tree spanning router + 3 shards")
PY

# 6. SIGTERM everything; every process must exit 0 (graceful drain).
kill -TERM "$ROUTER"
wait "$ROUTER"
for pid in "${PIDS[@]}"; do
  if [ "$pid" != "$ROUTER" ]; then
    kill -TERM "$pid"
    wait "$pid"
  fi
done
PIDS=()
echo "shard-smoke: ok (count 2 across 3 shards, stitched trace, clean shutdowns)"
