package ceci

import (
	"fmt"
	"strings"
)

// Explain renders a human-readable description of the prepared query
// plan: the chosen root, matching order, tree/non-tree edge split, the
// per-vertex candidate structures with their sizes, and the embedding-
// cluster statistics that drive workload balancing. Useful when tuning
// order heuristics or diagnosing why a pattern is slow.
func (m *Matcher) Explain() string {
	var b strings.Builder
	tree := m.index.Tree
	q := tree.Query

	fmt.Fprintf(&b, "query: %d vertices, %d edges (%d tree + %d non-tree)\n",
		q.NumVertices(), q.NumEdges(), tree.TreeEdgeCount(), tree.NTECount())
	fmt.Fprintf(&b, "root: u%d (cost-based argmin |cand|/deg)\n", tree.Root)

	if dec := m.decision; dec != nil {
		fmt.Fprintf(&b, "order source: planner — chose %q (estimate %.4g) out of %d candidate orders\n",
			dec.Chosen, dec.Estimate, len(dec.Candidates))
	} else {
		fmt.Fprintf(&b, "order source: %s heuristic\n", m.opts.Order)
	}
	fmt.Fprintf(&b, "matching order:")
	for _, u := range tree.Order {
		fmt.Fprintf(&b, " u%d", u)
	}
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "%-6s %-8s %-10s %-12s %-12s %s\n",
		"vertex", "label", "filtered", "TE-entries", "NTE-edges", "parent")
	for _, u := range tree.Order {
		node := &m.index.Nodes[u]
		parent := "-"
		if p := tree.Parent[u]; p >= 0 {
			parent = fmt.Sprintf("u%d", p)
		}
		labels := make([]string, 0, 2)
		for _, l := range q.Labels(u) {
			labels = append(labels, fmt.Sprintf("%d", l))
		}
		fmt.Fprintf(&b, "u%-5d %-8s %-10d %-12d %-12d %s\n",
			u, strings.Join(labels, ","), len(node.Cands), node.TE.Len(), len(node.NTE), parent)
	}

	info := m.IndexInfo()
	fmt.Fprintf(&b, "index: %d candidate edges (%d unique), %s, %.1f%% below the 8·|Eq|·|Eg| bound\n",
		info.CandidateEdges, info.SizeBytes/8, formatBytes(info.SizeBytes), info.SpaceSavedPercent())
	fmt.Fprintf(&b, "clusters: %d pivots, cardinality bound %d",
		info.Pivots, info.TotalCardinality)
	if info.Pivots > 0 {
		var max int64
		for _, p := range m.index.Pivots() {
			if c := m.index.ClusterCardinality(p); c > max {
				max = c
			}
		}
		fmt.Fprintf(&b, " (largest cluster %d", max)
		if info.TotalCardinality > 0 {
			fmt.Fprintf(&b, ", %.1f%% of total", 100*float64(max)/float64(info.TotalCardinality))
		}
		fmt.Fprint(&b, ")")
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "plan: %v distribution, beta=%.2g, %d workers, %s verification\n",
		m.opts.Strategy, m.opts.Beta, m.opts.Workers,
		map[bool]string{true: "adjacency-probe", false: "set-intersection"}[m.opts.EdgeVerification])
	return b.String()
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
