# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test race bench vet fmt ci experiments experiments-quick examples clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# What .github/workflows/ci.yml runs: vet + build + full tests, then a
# race pass over the concurrency-heavy packages.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/enum ./internal/cluster ./internal/obs ./internal/stats

# Regenerate every table and figure of the paper (minutes).
experiments:
	$(GO) run ./cmd/cecibench -exp all

experiments-quick:
	$(GO) run ./cmd/cecibench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/protein
	$(GO) run ./examples/workloadlab
	$(GO) run ./examples/fraud
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
