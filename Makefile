# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test race bench bench-json bench-compare bench-allocs bench-kernels vet fmt ci verify fuzz serve-smoke trace-smoke plan-smoke shard-smoke experiments experiments-quick examples clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable regression tracking: run the fixed suite and write
# BENCH_<name>.json. Refresh the committed baseline with
# `make bench-json BENCH_DIR=cmd/cecibench/testdata BENCH_NAME=baseline`.
BENCH_DIR ?= bench
BENCH_NAME ?= bench
BENCH_THRESHOLD ?= 0.25
bench-json:
	$(GO) run ./cmd/cecibench -json-out $(BENCH_DIR) -bench-name $(BENCH_NAME)

# Run the suite and fail (exit non-zero) on regression vs the committed
# baseline. Timing thresholds assume the same machine as the baseline;
# CI uses a much looser threshold (see .github/workflows/ci.yml).
bench-compare:
	$(GO) run ./cmd/cecibench -json-out $(BENCH_DIR) -bench-name $(BENCH_NAME) \
		-compare cmd/cecibench/testdata/BENCH_baseline.json -threshold $(BENCH_THRESHOLD)

# Allocation profile of the enumeration hot path: the strict
# AllocsPerRun proof (zero allocations per steady-state step) plus the
# -benchmem view of the Fig-7/8/19 suites. allocs/op on the enumeration
# benchmarks is the number to watch.
bench-allocs:
	$(GO) test -run TestEnumerationStepZeroAlloc -v ./internal/enum
	$(GO) test -bench 'Fig7|Fig8|Fig19' -benchmem -benchtime 3x ./cmd/cecibench

# Intersection-kernel health check: the per-kernel microbenchmarks
# (merge / gallop / bitset / adaptive dispatch), then the end-to-end
# suite gated against the committed baseline — which carries the
# per-kernel enum_kernel_* counter split, so a selector change that
# silently shifts work between kernels fails here.
bench-kernels:
	$(GO) test -bench 'BenchmarkKernel' -benchmem ./internal/setops
	$(GO) run ./cmd/cecibench -json-out $(BENCH_DIR) -bench-name $(BENCH_NAME) \
		-compare cmd/cecibench/testdata/BENCH_baseline.json -threshold $(BENCH_THRESHOLD)

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Differential correctness: the cross-matcher oracle and metamorphic
# invariants (internal/verify), raced, plus a seed sweep via cecirun.
verify:
	$(GO) test -race -run Differential ./internal/verify
	$(GO) run ./cmd/cecirun -verify -seed 1 -pairs 200

# Short fuzz pass over every target — same budget as the CI smoke job.
# Matcher/index crashers land under internal/verify/testdata/fuzz/
# (replay with `go run ./cmd/cecirun -verify -seed <seed>`); kernel
# crashers land under internal/setops/testdata/fuzz/.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzMatchDifferential -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -run='^$$' -fuzz=FuzzIndexRoundTrip -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -run='^$$' -fuzz=FuzzIntersectKernels -fuzztime=$(FUZZTIME) ./internal/setops
	$(GO) test -run='^$$' -fuzz=FuzzIntersectionSize -fuzztime=$(FUZZTIME) ./internal/setops

# What .github/workflows/ci.yml runs: vet + build + full tests, then a
# race pass over the concurrency-heavy packages.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/enum ./internal/ceci ./internal/cluster ./internal/obs ./internal/stats ./internal/prof ./internal/plan ./internal/setops ./internal/bitset ./internal/verify ./internal/service ./internal/shard ./cmd/ceciserve ./cmd/ceciroute

# Boot the query service on the Figure 1 fixture and exercise the HTTP
# API end to end (also run raced by CI's service-smoke job).
serve-smoke:
	$(GO) test -race -run TestServeSmoke -v ./cmd/ceciserve
	$(GO) test -race ./internal/service

# Trace a query end to end: traceparent ingress, flight recorder,
# Chrome export, audit flush (also run raced by CI's service-smoke job).
trace-smoke:
	$(GO) test -race -run 'TestServeTraceAuditFlush|TestTraced|TestRunTCPConnectedSpanTree' -v ./cmd/ceciserve ./internal/service ./internal/cluster

# Planner smoke: the cost model and planner property tests raced, the
# adaptive paths (EXPLAIN ANALYZE planner section, service drift
# re-plan) raced, the planner-on/off differential sweep, and the
# cecibench order matrix asserting the planner never does more
# enumeration work than the best static heuristic (also run by CI's
# planner-smoke job).
plan-smoke:
	$(GO) test -race ./internal/plan
	$(GO) test -race -run 'TestPlanner|TestExplainAnalyzePlanner' . ./internal/service
	$(GO) test -run TestDifferentialPlannerOrders -short ./internal/verify
	$(GO) run ./cmd/cecibench -exp orders -quick

# Sharded-serving smoke: the partition/router/fault-injection suites
# raced (differential oracle vs single-node, explicit-partial fault
# semantics, trace stitching), then the out-of-process pass — partition
# the Figure 1 fixture into 3 shards, boot the fleet plus the router,
# curl a traced query, validate the merged count and the stitched
# trace, SIGTERM everything (also run by CI's shard-smoke job).
shard-smoke:
	$(GO) test -race ./internal/shard
	$(GO) test -race -run 'TestServeShard|TestReadinessGate|TestRouteMode|TestPartitionMode|TestShardMode|TestClientRetr|TestClientBackoff' -v ./cmd/ceciserve ./cmd/ceciroute ./internal/service
	bash scripts/shard_smoke.sh

# Telemetry smoke: the hub's deterministic unit tests raced, then the
# /statz + /dashz + Server-Timing surfaces through the in-process server
# (also run, plus a curl-driven binary pass, by CI's telemetry-smoke job).
telemetry-smoke:
	$(GO) test -race ./internal/telemetry
	$(GO) test -race -run 'TestServeStatzSmoke|TestTelemetryEndToEnd|TestQueryzFilters|TestServerTimingHeader|TestRunLedger' -v ./cmd/ceciserve ./internal/service ./cmd/cecirun

# Regenerate every table and figure of the paper (minutes).
experiments:
	$(GO) run ./cmd/cecibench -exp all

experiments-quick:
	$(GO) run ./cmd/cecibench -exp all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/protein
	$(GO) run ./examples/workloadlab
	$(GO) run ./examples/fraud
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
