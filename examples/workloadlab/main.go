// Workload-balancing laboratory: explores the paper's Section 4.2-4.3
// design space interactively — static vs coarse-grained vs fine-grained
// distribution, and the effect of the ExtremeCluster threshold β on unit
// counts and per-worker balance.
//
// Run with:
//
//	go run ./examples/workloadlab
package main

import (
	"fmt"
	"log"
	"time"

	"ceci/internal/auto"
	icec "ceci/internal/ceci"
	"ceci/internal/datasets"
	"ceci/internal/enum"
	"ceci/internal/gen"
	"ceci/internal/order"
	"ceci/internal/workload"
)

func main() {
	data, err := datasets.Load("wt_s")
	if err != nil {
		log.Fatal(err)
	}
	query := gen.QG3() // 4-clique: workload imbalance at depth 4
	tree, err := order.Preprocess(data, query, order.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ix := icec.Build(data, tree, icec.Options{})
	cons := auto.Compute(query)

	fmt.Printf("data: %v, query: 4-clique, %d embedding clusters, total cardinality bound %d\n\n",
		data, len(ix.Pivots()), ix.TotalCardinality())

	// How does β change the unit decomposition?
	const workers = 16
	fmt.Println("ExtremeCluster decomposition (Algorithm 3):")
	for _, beta := range []float64{1.0, 0.5, 0.2, 0.1, 0.05} {
		units := workload.Decompose(ix, cons, beta, workers)
		maxCard := int64(0)
		for _, u := range units {
			if u.Card > maxCard {
				maxCard = u.Card
			}
		}
		fmt.Printf("  beta=%-5v units=%-7d largest-unit-cardinality=%d\n", beta, len(units), maxCard)
	}

	// Measure real per-unit costs once, then compare the strategies'
	// simulated makespans for 16 workers.
	fmt.Printf("\nstrategy comparison at %d workers (measured unit costs, simulated schedule):\n", workers)
	mCGD := enum.NewMatcher(ix, enum.Options{Strategy: workload.CGD, Workers: workers})
	clusterCosts := durations(mCGD.MeasureUnits())
	mFGD := enum.NewMatcher(ix, enum.Options{Strategy: workload.FGD, Workers: workers, Beta: 0.2})
	fgdCosts := durations(mFGD.MeasureUnits())

	st := workload.SimulateMakespan(clusterCosts, workers, workload.ST)
	cgd := workload.SimulateMakespan(clusterCosts, workers, workload.CGD)
	fgd := workload.SimulateMakespan(fgdCosts, workers, workload.FGD)
	fmt.Printf("  ST  makespan: %v\n", st)
	fmt.Printf("  CGD makespan: %v  (%.2fx over ST)\n", cgd, float64(st)/float64(cgd))
	fmt.Printf("  FGD makespan: %v  (%.2fx over ST)\n", fgd, float64(st)/float64(fgd))

	fmt.Println("\nper-worker busy times under FGD:")
	for w, t := range workload.SimulateWorkerTimes(fgdCosts, workers, workload.FGD) {
		fmt.Printf("  worker %2d: %v\n", w, t.Round(time.Microsecond))
	}
}

func durations(costs []enum.UnitCost) []time.Duration {
	out := make([]time.Duration, len(costs))
	for i, c := range costs {
		out[i] = c.Duration
	}
	return out
}
