// Distributed deployment walkthrough (Section 5 of the paper): runs the
// same query through three deployments —
//
//  1. the measured/simulated cluster in both placement modes, printing
//     per-machine cost ledgers (pivots assigned, work stolen, build
//     compute vs IO vs communication) and the speedup over one machine;
//  2. a real TCP deployment: machines pull work and steal clusters over
//     loopback sockets (the MPI stand-in), with wire bytes measured;
//  3. the shared-storage deployment with real file IO: one CSR file on
//     disk, machines materializing only the regions their pivots need.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ceci/internal/cluster"
	"ceci/internal/datasets"
	"ceci/internal/gen"
	"ceci/internal/graph"
)

func main() {
	data, err := datasets.Load("wt_s")
	if err != nil {
		log.Fatal(err)
	}
	query := gen.QG1() // triangle
	fmt.Printf("data graph: %v, query: triangle\n\n", data)

	sim, err := cluster.NewSimulation(data, query)
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []cluster.Mode{cluster.Replicated, cluster.SharedStorage} {
		fmt.Printf("== mode: %v ==\n", mode)
		var base *cluster.Result
		for _, machines := range []int{1, 4, 8} {
			res, err := sim.Run(cluster.Config{
				Machines:          machines,
				WorkersPerMachine: 4,
				Mode:              mode,
				Jaccard:           mode == cluster.Replicated,
			})
			if err != nil {
				log.Fatal(err)
			}
			if machines == 1 {
				base = res
			}
			fmt.Printf("%d machine(s): %d embeddings, makespan %v (%.2fx), %d steals\n",
				machines, res.Embeddings, res.Makespan.Round(1000),
				float64(base.Makespan)/float64(res.Makespan), res.Steals)
			if machines == 8 {
				fmt.Println("  per-machine ledgers:")
				for i, l := range res.Machines {
					fmt.Printf("   m%d: pivots=%-5d stolen=%-3d buildCPU=%-10v buildIO=%-10v comm=%-10v enum=%-10v embeddings=%d\n",
						i, l.Pivots, l.Stolen,
						l.BuildCompute.Round(1000), l.BuildIO.Round(1000),
						l.Comm.Round(1000), l.Enumerate.Round(1000), l.Embeddings)
				}
			}
		}
		fmt.Println()
	}

	// A real network deployment: coordination over TCP loopback.
	fmt.Println("== TCP transport (real sockets, measured wire traffic) ==")
	tcpRes, err := cluster.RunTCP(data, query, cluster.Config{
		Machines: 4, WorkersPerMachine: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	var msgs int64
	for _, l := range tcpRes.Machines {
		msgs += l.MessagesSent
	}
	fmt.Printf("4 machines over TCP: %d embeddings, %d steals, %d wire messages\n\n",
		tcpRes.Embeddings, tcpRes.Steals, msgs)

	// The shared-storage deployment against a real CSR file.
	fmt.Println("== shared storage (one CSR file, real positioned reads) ==")
	dir, err := os.MkdirTemp("", "ceci-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	csrPath := filepath.Join(dir, "data.csr")
	f, err := os.Create(csrPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.WriteCSR(f, data); err != nil {
		log.Fatal(err)
	}
	f.Close()
	diskRes, err := cluster.RunDiskShared(csrPath, query, cluster.Config{
		Machines: 4, WorkersPerMachine: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	var reads int64
	for _, l := range diskRes.Machines {
		reads += l.RemoteReads
	}
	fmt.Printf("4 machines on shared CSR: %d embeddings, %d adjacency reads from disk\n",
		diskRes.Embeddings, reads)
}
