// Protein-motif search: the use case that motivates the paper's labeled
// experiments (analysis of protein-protein interaction networks, §1).
//
// A synthetic PPI-style network is generated with multi-labeled vertices
// (proteins carry one or more functional annotations, like the paper's
// Human dataset with 90 labels), and two classic network motifs are
// searched: the "bi-fan" regulatory motif and a labeled feed-forward
// triangle. The example demonstrates multi-label matching, the first-k
// mode, and instrumentation counters.
//
// Run with:
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"

	"ceci"
	"ceci/internal/datasets"
)

func main() {
	// hu_s: the paper's Human-dataset substitute (4.6K proteins, ~80K
	// interactions, 90 functional labels, one or more per vertex).
	data, err := datasets.Load("hu_s")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPI-style network: %v\n", data)

	// Use the two most common annotations as the motif's labels so the
	// search has realistic selectivity (annotation frequencies in real
	// PPI data are skewed; in the synthetic substitute they are near
	// uniform, so "most common" just guarantees a non-trivial demo).
	kinase, receptor := topTwoLabels(data)
	fmt.Printf("searching motifs over annotations %d (%d proteins) and %d (%d proteins)\n",
		kinase, data.LabelFrequency(kinase), receptor, data.LabelFrequency(receptor))

	// Motif 1: labeled feed-forward triangle — kinase regulating two
	// receptors that also interact.
	qb := ceci.NewBuilder(0)
	k := qb.AddVertex(kinase)
	r1 := qb.AddVertex(receptor)
	r2 := qb.AddVertex(receptor)
	qb.AddEdge(k, r1)
	qb.AddEdge(k, r2)
	qb.AddEdge(r1, r2)
	triangle := qb.MustBuild()

	st := &ceci.Stats{}
	m, err := ceci.Match(data, triangle, &ceci.Options{Stats: st})
	if err != nil {
		log.Fatal(err)
	}
	n := m.Count()
	fmt.Printf("\nkinase->receptor feed-forward triangles: %d\n", n)
	fmt.Printf("  recursive calls: %d, intersections: %d\n",
		st.RecursiveCalls.Load(), st.IntersectionOps.Load())

	// Motif 2: bi-fan — two kinases each interacting with the same two
	// receptors. Symmetric query: automorphism breaking returns each
	// subgraph once.
	bb := ceci.NewBuilder(0)
	k1 := bb.AddVertex(kinase)
	k2 := bb.AddVertex(kinase)
	s1 := bb.AddVertex(receptor)
	s2 := bb.AddVertex(receptor)
	bb.AddEdge(k1, s1)
	bb.AddEdge(k1, s2)
	bb.AddEdge(k2, s1)
	bb.AddEdge(k2, s2)
	bifan := bb.MustBuild()

	fmt.Printf("\nbi-fan motif (automorphism group size %d, each subgraph listed once):\n",
		ceci.Automorphisms(bifan))
	mb, err := ceci.Match(data, bifan, &ceci.Options{Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i, emb := range mb.First(5) {
		fmt.Printf("  match %d: kinases(%d,%d) receptors(%d,%d)\n",
			i+1, emb[k1], emb[k2], emb[s1], emb[s2])
	}

	total, err := ceci.Count(data, bifan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  total bi-fans: %d\n", total)
}

// topTwoLabels returns the two most frequent labels of g.
func topTwoLabels(g *ceci.Graph) (ceci.Label, ceci.Label) {
	best, second := ceci.Label(0), ceci.Label(1)
	for l := 0; l < g.NumLabels(); l++ {
		f := g.LabelFrequency(ceci.Label(l))
		if f > g.LabelFrequency(best) {
			second = best
			best = ceci.Label(l)
		} else if f > g.LabelFrequency(second) && ceci.Label(l) != best {
			second = ceci.Label(l)
		}
	}
	return best, second
}
