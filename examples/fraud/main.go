// Transaction-ring screening: a fintech-flavored use of subgraph
// matching. Accounts are vertices labeled by risk tier; transfers are
// edges. The pattern of interest is a "smurfing diamond": two low-tier
// mule accounts both receiving from one source and both forwarding to
// the same collector — a 4-cycle with typed corners.
//
// The example demonstrates the incremental (cluster-at-a-time) matching
// mode: screening stops after the first few rings are found, without
// indexing the whole ledger — the right tool when any hit triggers a
// manual review anyway.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"ceci"
)

const (
	tierRetail ceci.Label = iota // ordinary accounts
	tierMule                     // freshly opened, low-history accounts
	tierHub                      // high-throughput accounts
)

func main() {
	ledger := buildLedger(30000, 120000, 42)
	fmt.Printf("transaction graph: %v\n", ledger)

	// The smurfing diamond: hub -> mule, hub -> mule', mule -> hub',
	// mule' -> hub' (undirected view: a 4-cycle hub-mule-hub-mule).
	qb := ceci.NewBuilder(0)
	source := qb.AddVertex(tierHub)
	mule1 := qb.AddVertex(tierMule)
	mule2 := qb.AddVertex(tierMule)
	collector := qb.AddVertex(tierHub)
	qb.AddEdge(source, mule1)
	qb.AddEdge(source, mule2)
	qb.AddEdge(mule1, collector)
	qb.AddEdge(mule2, collector)
	pattern := qb.MustBuild()

	// Screening mode: surface the first 5 rings, building index slices
	// only for the clusters actually inspected.
	fmt.Println("\nfirst rings found (incremental screening):")
	shown := 0
	var mu sync.Mutex // the callback may fire from several workers
	err := ceci.ForEachIncremental(ledger, pattern, &ceci.Options{Limit: 5},
		func(emb []ceci.VertexID) bool {
			mu.Lock()
			defer mu.Unlock()
			shown++
			fmt.Printf("  ring %d: source=acct%d mules=(acct%d, acct%d) collector=acct%d\n",
				shown, emb[source], emb[mule1], emb[mule2], emb[collector])
			return true
		})
	if err != nil {
		log.Fatal(err)
	}
	if shown == 0 {
		fmt.Println("  none (ledger clean)")
	}

	// Audit mode: exact total with the full index, plus plan statistics.
	m, err := ceci.Match(ledger, pattern, nil)
	if err != nil {
		log.Fatal(err)
	}
	total := m.Count()
	info := m.IndexInfo()
	fmt.Printf("\nfull audit: %d distinct rings\n", total)
	fmt.Printf("index: %d suspicious-account clusters, %d candidate edges, %.1f%% under worst case\n",
		info.Pivots, info.CandidateEdges, info.SpaceSavedPercent())
}

// buildLedger synthesizes a skewed transfer graph: most accounts are
// retail, a few hundred are high-throughput hubs, and a sprinkling of
// mule accounts connect preferentially to hubs (which is what makes the
// diamond pattern appear).
func buildLedger(accounts, transfers int, seed int64) *ceci.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := ceci.NewBuilder(accounts)
	hubs := make([]ceci.VertexID, 0, accounts/100)
	mules := make([]ceci.VertexID, 0, accounts/50)
	for v := 0; v < accounts; v++ {
		switch {
		case rng.Float64() < 0.01:
			b.SetLabel(ceci.VertexID(v), tierHub)
			hubs = append(hubs, ceci.VertexID(v))
		case rng.Float64() < 0.02:
			b.SetLabel(ceci.VertexID(v), tierMule)
			mules = append(mules, ceci.VertexID(v))
		default:
			b.SetLabel(ceci.VertexID(v), tierRetail)
		}
	}
	for i := 0; i < transfers; i++ {
		u := ceci.VertexID(rng.Intn(accounts))
		v := ceci.VertexID(rng.Intn(accounts))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	// Mule wiring: each mule transacts with a couple of hubs.
	for _, m := range mules {
		for k := 0; k < 2+rng.Intn(2); k++ {
			b.AddEdge(m, hubs[rng.Intn(len(hubs))])
		}
	}
	return b.MustBuild()
}
