// Quickstart: build a small labeled data graph, define a query pattern,
// and enumerate every isomorphic embedding with the default (parallel,
// FGD-balanced) matcher.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"ceci"
)

func main() {
	// Data graph: a toy social network. Labels: 0 = person, 1 = group,
	// 2 = page.
	const (
		person ceci.Label = iota
		group
		page
	)
	db := ceci.NewBuilder(0)
	alice := db.AddVertex(person)
	bob := db.AddVertex(person)
	carol := db.AddVertex(person)
	dave := db.AddVertex(person)
	goBoard := db.AddVertex(group)
	chess := db.AddVertex(group)
	news := db.AddVertex(page)

	// Friendships.
	db.AddEdge(alice, bob)
	db.AddEdge(bob, carol)
	db.AddEdge(carol, alice)
	db.AddEdge(carol, dave)
	// Memberships and likes.
	db.AddEdge(alice, goBoard)
	db.AddEdge(bob, goBoard)
	db.AddEdge(carol, chess)
	db.AddEdge(dave, chess)
	db.AddEdge(alice, news)
	db.AddEdge(bob, news)
	data := db.MustBuild()

	// Query: two friends who share a group membership — a triangle of
	// person-person-group.
	qb := ceci.NewBuilder(0)
	p1 := qb.AddVertex(person)
	p2 := qb.AddVertex(person)
	g := qb.AddVertex(group)
	qb.AddEdge(p1, p2)
	qb.AddEdge(p1, g)
	qb.AddEdge(p2, g)
	query := qb.MustBuild()

	m, err := ceci.Match(data, query, nil)
	if err != nil {
		log.Fatal(err)
	}

	names := map[ceci.VertexID]string{
		alice: "alice", bob: "bob", carol: "carol", dave: "dave",
		goBoard: "go-board", chess: "chess", news: "news",
	}
	fmt.Println("friend pairs sharing a group:")
	// The callback may run concurrently from several workers; guard
	// shared state (here, stdout ordering) with a mutex.
	var mu sync.Mutex
	m.ForEach(func(emb []ceci.VertexID) bool {
		mu.Lock()
		fmt.Printf("  %s + %s in %s\n", names[emb[p1]], names[emb[p2]], names[emb[g]])
		mu.Unlock()
		return true
	})

	info := m.IndexInfo()
	fmt.Printf("\nindex: %d embedding clusters, %d candidate edges, %.1f%% below worst case\n",
		info.Pivots, info.CandidateEdges, info.SpaceSavedPercent())
}
