package ceci

import (
	"fmt"
	"io"
	"os"

	icec "ceci/internal/ceci"
	"ceci/internal/enum"
	"ceci/internal/order"
)

// Index persistence: a built CECI can be saved and later rematched
// without paying construction again — the direction the paper's §6.4
// sketches for indexes that outgrow main memory. The serialized form
// embeds a fingerprint of the (data graph, query, options) it was built
// for; loading against anything else fails.

// SaveIndex writes the matcher's CECI to w.
func (m *Matcher) SaveIndex(w io.Writer) error {
	_, err := m.index.WriteTo(w)
	return err
}

// SaveIndexFile writes the matcher's CECI to path.
func (m *Matcher) SaveIndexFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.SaveIndex(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// MatchWithIndex prepares a Matcher from a previously saved index
// instead of building one. The data graph, query, and the order-related
// options (Order, Root) must match the ones used when the index was
// built; enumeration options (Workers, Limit, Strategy, ...) may differ
// freely.
func MatchWithIndex(data, query *Graph, r io.Reader, opts *Options) (*Matcher, error) {
	if data == nil || query == nil {
		return nil, fmt.Errorf("ceci: nil graph")
	}
	o := opts.normalized()
	forcedRoot := -1
	if o.Root != nil {
		forcedRoot = int(*o.Root)
	}
	tree, err := order.Preprocess(data, query, order.Options{
		ForcedRoot: forcedRoot,
		Heuristic:  o.Order,
	})
	if err != nil {
		return nil, err
	}
	ix, err := icec.ReadIndex(r, data, tree)
	if err != nil {
		return nil, err
	}
	inner := enum.NewMatcher(ix, enum.Options{
		Workers:                 o.Workers,
		Limit:                   o.Limit,
		Strategy:                o.Strategy.internal(),
		Beta:                    o.Beta,
		EdgeVerification:        o.EdgeVerification,
		DisableSymmetryBreaking: o.KeepAutomorphisms,
		Stats:                   o.Stats,
	})
	return &Matcher{inner: inner, index: ix, opts: o}, nil
}

// MatchWithIndexFile is MatchWithIndex reading from path.
func MatchWithIndexFile(data, query *Graph, path string, opts *Options) (*Matcher, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return MatchWithIndex(data, query, f, opts)
}
